// Reusable restoration-lemma property checks, shared by the k = 1 suite
// (test_theorems.cpp) and the k >= 2 multi-failure suite
// (test_multi_failure.cpp).
//
// One restoration is "lemma-clean" when:
//  * the decomposition re-concatenates exactly to the restored route;
//  * the route survives the failure set and is loop-free;
//  * the route is cost-optimal among base-subpath concatenations — since
//    single edges are admissible pieces, that optimum equals the
//    post-failure shortest-path distance;
//  * every piece survives the failures, base-flagged pieces are members of
//    the base set, and loose pieces are single edges.
//
// The header also hosts the shared failure-set sampler, a textbook
// reference Dijkstra for the differential SPF fuzz, and tree-equality
// helpers for the bit-identity (thread count / cache / repair) checks.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <sstream>
#include <vector>

#include "core/base_set.hpp"
#include "core/decompose.hpp"
#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "spf/metric.hpp"
#include "spf/spf.hpp"
#include "spf/tree.hpp"
#include "util/rng.hpp"

namespace rbpc::testing {

/// Fails k distinct random edges (k clipped to the edge count).
inline graph::FailureMask random_edge_failures(const graph::Graph& g,
                                               std::size_t k, Rng& rng) {
  graph::FailureMask mask;
  const std::uint64_t take =
      std::min<std::uint64_t>(k, g.num_edges());
  for (const std::uint64_t e : rng.sample_distinct(g.num_edges(), take)) {
    mask.fail_edge(static_cast<graph::EdgeId>(e));
  }
  return mask;
}

// --- lemma bounds -----------------------------------------------------------

/// Theorem 1 (unweighted): at most k + 1 base-path pieces.
inline std::size_t theorem1_bound(std::size_t k) { return k + 1; }

/// Theorem 2 / Theorem 3 (weighted): at most k + 1 base paths interleaved
/// with k loose edges — 2k + 1 components total.
inline std::size_t theorem2_bound(std::size_t k) { return 2 * k + 1; }

/// The applicable worst-case component bound for a subpath-closed base set
/// under `metric`: Theorem 1 for hops (every edge is a base path, so no
/// loose edges are ever needed), Theorem 2 for weights.
inline std::size_t lemma_bound(spf::Metric metric, std::size_t k) {
  return metric == spf::Metric::Hops ? theorem1_bound(k) : theorem2_bound(k);
}

// --- the restoration property ------------------------------------------------

/// Checks that (route, decomposition) is a lemma-clean restoration of
/// s -> t under `mask` (see the header comment). Returns an explanatory
/// failure so callers can add their own context with `<<`.
inline ::testing::AssertionResult check_restoration(
    core::BasePathSet& base, const graph::FailureMask& mask,
    const graph::Path& route, const core::Decomposition& d) {
  const graph::Graph& g = base.graph();
  if (route.empty()) {
    return ::testing::AssertionFailure() << "route is empty";
  }
  if (d.joined() != route) {
    return ::testing::AssertionFailure()
           << "decomposition does not re-concatenate to the route: "
           << d.joined().to_string() << " vs " << route.to_string();
  }
  if (!route.alive(g, mask)) {
    return ::testing::AssertionFailure()
           << "route uses failed elements: " << route.to_string();
  }
  if (!route.simple()) {
    return ::testing::AssertionFailure()
           << "route is not loop-free: " << route.to_string();
  }
  const graph::Weight optimal = spf::distance(
      g, route.source(), route.target(), mask,
      spf::SpfOptions{.metric = base.metric()});
  graph::Weight cost = 0;
  for (const graph::EdgeId e : route.edges()) {
    cost += spf::metric_weight(g, e, base.metric());
  }
  if (cost != optimal) {
    return ::testing::AssertionFailure()
           << "route cost " << cost
           << " is not optimal among concatenations (shortest = " << optimal
           << "): " << route.to_string();
  }
  for (std::size_t i = 0; i < d.pieces.size(); ++i) {
    const graph::Path& piece = d.pieces[i];
    if (!piece.alive(g, mask)) {
      return ::testing::AssertionFailure()
             << "piece " << i << " uses failed elements: "
             << piece.to_string();
    }
    if (d.is_base[i]) {
      if (!base.contains(piece)) {
        return ::testing::AssertionFailure()
               << "piece " << i << " is flagged base but not a member of "
               << base.name() << ": " << piece.to_string();
      }
    } else if (piece.hops() != 1) {
      return ::testing::AssertionFailure()
             << "loose piece " << i << " is not a single edge: "
             << piece.to_string();
    }
  }
  return ::testing::AssertionSuccess();
}

// --- tree equality (bit-identity checks) -------------------------------------

/// Structural equality of two SPF trees: same flavor, same source, and the
/// same (key, dist, hops, parent, parent_edge) at every node. This is what
/// "bit-identical across thread counts and cache repair paths" asserts.
inline ::testing::AssertionResult trees_identical(
    const spf::ShortestPathTree& a, const spf::ShortestPathTree& b) {
  if (a.num_nodes() != b.num_nodes()) {
    return ::testing::AssertionFailure()
           << "node counts differ: " << a.num_nodes() << " vs "
           << b.num_nodes();
  }
  if (a.source() != b.source() || a.metric() != b.metric() ||
      a.padded() != b.padded() || a.tiebreak() != b.tiebreak()) {
    return ::testing::AssertionFailure() << "tree flavors differ";
  }
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.dist(v) != b.dist(v) || a.key(v) != b.key(v) ||
        a.parent(v) != b.parent(v) || a.parent_edge(v) != b.parent_edge(v)) {
      return ::testing::AssertionFailure()
             << "trees differ at node " << v << ": dist " << a.dist(v)
             << "/" << b.dist(v) << " key " << a.key(v) << "/" << b.key(v)
             << " parent " << a.parent(v) << "/" << b.parent(v)
             << " parent_edge " << a.parent_edge(v) << "/"
             << b.parent_edge(v);
    }
    if (a.dist(v) != graph::kUnreachable && a.hops(v) != b.hops(v)) {
      return ::testing::AssertionFailure()
             << "trees differ at node " << v << ": hops " << a.hops(v)
             << " vs " << b.hops(v);
    }
  }
  return ::testing::AssertionSuccess();
}

// --- reference Dijkstra (differential fuzz oracle) ---------------------------

/// Distances from a textbook binary-heap Dijkstra, independent of the SPF
/// kernels (no shared workspace, heap, or settle-order machinery). Returns
/// per-node (key, dist): the padded key and true cost when `options.padded`,
/// key == dist otherwise. The fuzz suite diffs these against
/// shortest_tree / repair_tree output.
struct ReferenceLabels {
  std::vector<graph::Weight> key;
  std::vector<graph::Weight> dist;
};

inline ReferenceLabels reference_dijkstra(const graph::Graph& g,
                                          graph::NodeId source,
                                          const graph::FailureMask& mask,
                                          const spf::SpfOptions& options) {
  ReferenceLabels out;
  out.key.assign(g.num_nodes(), graph::kUnreachable);
  out.dist.assign(g.num_nodes(), graph::kUnreachable);
  if (!mask.node_alive(source)) return out;
  using Item = std::pair<graph::Weight, graph::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  std::vector<char> settled(g.num_nodes(), 0);
  out.key[source] = 0;
  out.dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [k, v] = heap.top();
    heap.pop();
    if (settled[v] || k != out.key[v]) continue;
    settled[v] = 1;
    for (const graph::Arc& a : g.arcs(v)) {
      if (!mask.edge_alive(g, a.edge) || settled[a.to]) continue;
      const graph::Weight step =
          options.padded
              ? spf::padded_weight(g, a.edge, options.metric, options.tiebreak)
              : spf::metric_weight(g, a.edge, options.metric);
      if (out.key[v] + step < out.key[a.to]) {
        out.key[a.to] = out.key[v] + step;
        out.dist[a.to] =
            out.dist[v] + spf::metric_weight(g, a.edge, options.metric);
        heap.push({out.key[a.to], a.to});
      }
    }
  }
  return out;
}

/// Diffs an SPF tree against the reference labels; on mismatch names the
/// first divergent node (the fuzz shrinker's starting point).
inline ::testing::AssertionResult matches_reference(
    const spf::ShortestPathTree& tree, const ReferenceLabels& ref) {
  for (graph::NodeId v = 0; v < tree.num_nodes(); ++v) {
    if (tree.dist(v) != ref.dist[v] || tree.key(v) != ref.key[v]) {
      return ::testing::AssertionFailure()
             << "node " << v << ": tree (key " << tree.key(v) << ", dist "
             << tree.dist(v) << ") vs reference (key " << ref.key[v]
             << ", dist " << ref.dist[v] << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace rbpc::testing
