// Arena-backed hot path: PathArena unit behavior and, corpus-wide, the
// bit-identical equivalence of the allocation-free engines against their
// legacy counterparts — restoration, greedy/overlay decomposition, bulk SPF
// and bounded point distances. Standalone binary so CI can run it under
// TSan and ASan directly (the arena growth/reuse/rewind paths are exactly
// where lifetime bugs would hide).
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "core/base_set.hpp"
#include "core/decompose.hpp"
#include "core/experiment.hpp"
#include "core/restoration.hpp"
#include "core/scenario.hpp"
#include "corpus.hpp"
#include "graph/analysis.hpp"
#include "graph/failure.hpp"
#include "graph/path_arena.hpp"
#include "obs/metrics.hpp"
#include "spf/bulk.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "spf/workspace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rbpc {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;
using graph::PathArena;
using graph::PathRef;
using graph::PathView;

Graph square() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 0, 1);
  return b.build();
}

std::int64_t oracle_trees_gauge() {
  const auto snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& g : snap.gauges) {
    if (g.name == "rbpc.mem.oracle_trees") return g.value;
  }
  return 0;
}

// --- PathArena unit behavior ------------------------------------------------

TEST(PathArena, StoreViewRoundTrip) {
  const Graph g = square();
  const Path p = Path::from_nodes(g, {0, 1, 2});
  PathArena arena;
  const PathRef r = arena.store(p);
  EXPECT_EQ(r.num_nodes(), 3u);
  EXPECT_EQ(r.hops(), 2u);
  const PathView v = arena.view(r);
  EXPECT_EQ(v.num_nodes(), 3u);
  EXPECT_EQ(v.node(0), 0u);
  EXPECT_EQ(v.node(2), 2u);
  EXPECT_EQ(arena.to_path(g, r), p);
}

TEST(PathArena, TrivialAndEmpty) {
  PathArena arena;
  const PathRef t = arena.trivial(7);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.hops(), 0u);
  const PathRef empty{};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.hops(), 0u);
  static_assert(std::is_trivially_copyable_v<PathRef>);
}

TEST(PathArena, SubrefIsOffsetMath) {
  const Graph g = square();
  PathArena arena;
  const PathRef r = arena.from_nodes(g, std::vector<NodeId>{0, 1, 2, 3});
  const PathRef mid = arena.subref(r, 1, 2);
  EXPECT_EQ(mid.num_nodes(), 2u);
  const PathView v = arena.view(mid);
  EXPECT_EQ(v.node(0), 1u);
  EXPECT_EQ(v.node(1), 2u);
  // No storage consumed by subref: same arena size before/after.
  const std::size_t size = arena.size();
  (void)arena.subref(r, 0, 3);
  EXPECT_EQ(arena.size(), size);
}

TEST(PathArena, CommitReversedMatchesForwardBuild) {
  const Graph g = square();
  PathArena arena;
  // Forward: 0 -e0-> 1 -e1-> 2. Reversed build writes 2, e1, 1, e0, 0.
  arena.start();
  arena.add_node(2);
  arena.add_edge(1);
  arena.add_node(1);
  arena.add_edge(0);
  arena.add_node(0);
  const PathRef r = arena.commit_reversed();
  EXPECT_EQ(arena.to_path(g, r), Path::from_nodes(g, {0, 1, 2}));
}

TEST(PathArena, ClearReusesCapacityAndGrowthSurvives) {
  const Graph g = square();
  PathArena arena;
  for (int round = 0; round < 3; ++round) {
    arena.clear();
    EXPECT_EQ(arena.size(), 0u);
    std::vector<PathRef> refs;
    for (int i = 0; i < 64; ++i) {
      refs.push_back(arena.from_nodes(g, std::vector<NodeId>{0, 1, 2, 3}));
    }
    // All handles stay valid until the next clear().
    for (const PathRef& r : refs) {
      EXPECT_EQ(arena.view(r).node(3), 3u);
    }
  }
  EXPECT_GT(arena.capacity_bytes(), 0u);
}

TEST(PathArena, MarkRewindDropsProbes) {
  const Graph g = square();
  PathArena arena;
  const PathRef keep = arena.from_nodes(g, std::vector<NodeId>{0, 1});
  const PathArena::Mark m = arena.mark();
  (void)arena.from_nodes(g, std::vector<NodeId>{1, 2, 3});
  (void)arena.from_nodes(g, std::vector<NodeId>{3, 0});
  arena.rewind(m);
  EXPECT_EQ(arena.size(), 2u);  // only `keep` remains
  EXPECT_EQ(arena.view(keep).node(1), 1u);
  EXPECT_THROW(arena.rewind(PathArena::Mark{999}), PreconditionError);
}

TEST(PathArena, AbandonDiscardsOpenPath) {
  PathArena arena;
  arena.start();
  arena.add_node(0);
  arena.add_edge(0);
  arena.add_node(1);
  arena.abandon();
  EXPECT_EQ(arena.size(), 0u);
}

// --- Corpus-wide differentials ----------------------------------------------

/// Sampled (s, t, failed-link) scenarios per topology: every LSP link of a
/// few sampled pairs, exactly the paper's single-failure methodology.
struct RestoreCase {
  NodeId s;
  NodeId t;
  FailureMask mask;
};

std::vector<RestoreCase> restore_cases(spf::DistanceOracle& oracle,
                                       std::uint64_t seed) {
  std::vector<RestoreCase> out;
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    Rng sample_rng = rng.fork();
    const core::SamplePair pair = core::sample_pair(oracle, sample_rng);
    for (const auto& sc :
         core::scenarios_for(pair, core::FailureClass::OneLink, sample_rng)) {
      out.push_back(RestoreCase{pair.src, pair.dst, sc.mask});
    }
  }
  return out;
}

TEST(ArenaDifferential, RestorationBitIdenticalAcrossCorpus) {
  for (const auto& tc : testing::corpus()) {
    const spf::Metric metric =
        tc.g.is_unit_weight() ? spf::Metric::Hops : spf::Metric::Weighted;
    spf::DistanceOracle oracle(tc.g, FailureMask{}, metric);
    core::AllPairsShortestBaseSet base(oracle);
    core::RestoreScratch scratch;
    for (const RestoreCase& c : restore_cases(oracle, 71)) {
      const core::Restoration legacy =
          core::source_rbpc_restore(base, c.s, c.t, c.mask);
      core::source_rbpc_restore_into(base, c.s, c.t, c.mask, scratch);
      const core::Restoration arena = scratch.materialize(tc.g);
      ASSERT_EQ(legacy.restored(), arena.restored()) << tc.name;
      ASSERT_EQ(legacy.backup, arena.backup) << tc.name;
      ASSERT_EQ(legacy.decomposition, arena.decomposition) << tc.name;
      ASSERT_EQ(legacy.pc_length(), scratch.pc_length()) << tc.name;
    }
  }
}

TEST(ArenaDifferential, GreedyDecomposeIdenticalForCanonicalSet) {
  // The canonical set is not the restoration default, so cover it
  // separately: same greedy pieces through the arena as through Paths.
  for (const auto& tc : testing::corpus()) {
    const spf::Metric metric =
        tc.g.is_unit_weight() ? spf::Metric::Hops : spf::Metric::Weighted;
    spf::DistanceOracle oracle(tc.g, FailureMask{}, metric);
    core::CanonicalBaseSet base(oracle);
    PathArena arena;
    core::DecompositionRef out;
    Rng rng(37);
    for (int i = 0; i < 4; ++i) {
      Rng sample_rng = rng.fork();
      const core::SamplePair pair = core::sample_pair(oracle, sample_rng);
      if (pair.lsp.hops() < 2) continue;
      FailureMask mask;
      mask.fail_edge(pair.lsp.edge(0));
      const Path backup =
          spf::shortest_path(tc.g, pair.src, pair.dst, mask,
                             spf::SpfOptions{.metric = metric, .padded = true});
      if (backup.empty()) continue;
      const core::Decomposition legacy = core::greedy_decompose(base, backup);
      arena.clear();
      core::greedy_decompose_into(base, arena, arena.store(backup), out);
      ASSERT_EQ(legacy, out.materialize(tc.g, arena)) << tc.name;
    }
  }
}

TEST(ArenaDifferential, OverlayDecomposeStableUnderSharedArena) {
  // The overlay engine mark/rewinds its candidate probes; repeated runs in
  // one arena must neither leak probe storage nor change the answer.
  for (const auto& tc : testing::corpus()) {
    if (tc.g.num_nodes() > 30) continue;  // overlay is O(n^2) per call
    const spf::Metric metric =
        tc.g.is_unit_weight() ? spf::Metric::Hops : spf::Metric::Weighted;
    spf::DistanceOracle oracle(tc.g, FailureMask{}, metric);
    core::CanonicalBaseSet base(oracle);
    PathArena arena;
    core::OverlayWorkspace ws;
    core::DecompositionRef out;
    Rng rng(53);
    Rng sample_rng = rng.fork();
    const core::SamplePair pair = core::sample_pair(oracle, sample_rng);
    FailureMask mask;
    mask.fail_edge(pair.lsp.edge(0));
    const core::Decomposition legacy =
        core::overlay_decompose(base, mask, pair.src, pair.dst);
    std::size_t settled_size = 0;
    for (int round = 0; round < 3; ++round) {
      arena.clear();
      core::overlay_decompose_into(base, mask, pair.src, pair.dst, arena, ws,
                                   out);
      ASSERT_EQ(legacy, out.materialize(tc.g, arena)) << tc.name;
      if (round == 0) settled_size = arena.size();
      ASSERT_EQ(arena.size(), settled_size) << tc.name;  // probes rewound
    }
  }
}

TEST(ArenaDifferential, BulkTreesMatchSerial) {
  ThreadPool pool(3);
  for (const auto& tc : testing::corpus()) {
    const spf::Metric metric =
        tc.g.is_unit_weight() ? spf::Metric::Hops : spf::Metric::Weighted;
    const spf::SpfOptions options{.metric = metric, .padded = true};
    std::vector<NodeId> sources;
    for (NodeId s = 0; s < tc.g.num_nodes(); s += 3) sources.push_back(s);
    const std::vector<spf::ShortestPathTree> bulk = spf::build_trees(
        tc.g, sources, FailureMask::none(), options, pool);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const spf::ShortestPathTree serial =
          spf::shortest_tree(tc.g, sources[i], FailureMask::none(), options);
      ASSERT_EQ(bulk[i].source(), serial.source()) << tc.name;
      for (NodeId v = 0; v < tc.g.num_nodes(); ++v) {
        ASSERT_EQ(bulk[i].dist(v), serial.dist(v)) << tc.name;
        ASSERT_EQ(bulk[i].parent(v), serial.parent(v)) << tc.name;
        ASSERT_EQ(bulk[i].parent_edge(v), serial.parent_edge(v)) << tc.name;
        ASSERT_EQ(bulk[i].key(v), serial.key(v)) << tc.name;
      }
    }
  }
}

TEST(ArenaDifferential, BoundedDistanceMatchesDijkstra) {
  spf::SpfWorkspace fwd;
  spf::SpfWorkspace bwd;
  for (const auto& tc : testing::corpus()) {
    const spf::Metric metric =
        tc.g.is_unit_weight() ? spf::Metric::Hops : spf::Metric::Weighted;
    const spf::SpfOptions options{.metric = metric};
    Rng rng(97);
    for (int i = 0; i < 16; ++i) {
      const NodeId s = static_cast<NodeId>(rng.below(tc.g.num_nodes()));
      const NodeId t = static_cast<NodeId>(rng.below(tc.g.num_nodes()));
      FailureMask mask;
      if (i % 2 == 1) {
        mask.fail_edge(static_cast<EdgeId>(rng.below(tc.g.num_edges())));
      }
      ASSERT_EQ(
          spf::bounded_distance(tc.g, s, t, mask, options, fwd, bwd),
          spf::distance(tc.g, s, t, mask, options))
          << tc.name << " " << s << "->" << t;
    }
  }
}

// --- Oracle memory bounds ---------------------------------------------------

TEST(OracleMemory, ByteCapEvictsAndGaugeTracks) {
  Rng rng(5);
  const Graph g = topo::make_waxman(60, 0.4, 0.35, rng);
  const std::int64_t gauge_before = oracle_trees_gauge();
  {
    spf::DistanceOracle unbounded(g, FailureMask{}, spf::Metric::Weighted);
    const std::size_t per_tree = [&] {
      spf::DistanceOracle probe(g, FailureMask{}, spf::Metric::Weighted);
      (void)probe.tree(0);
      return probe.cached_bytes();
    }();
    ASSERT_GT(per_tree, 0u);

    // Byte cap for ~3 trees; insertions past that evict LRU-first.
    spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted,
                               /*max_cached_trees=*/0,
                               /*max_cached_bytes=*/3 * per_tree);
    for (NodeId s = 0; s < 10; ++s) (void)oracle.tree(s);
    EXPECT_LE(oracle.cached_bytes(), 3 * per_tree);
    EXPECT_LE(oracle.cached_trees(), 3u);
    EXPECT_GE(oracle.cached_trees(), 1u);  // newest is always kept
    // Answers stay correct after eviction.
    for (NodeId s = 0; s < 10; ++s) {
      EXPECT_EQ(oracle.dist(s, 0), spf::distance(g, s, 0));
    }
    // The gauge carries every live oracle's cached bytes (it reads zero
    // in an RBPC_OBS_DISABLED build; the eviction checks above still run).
    if (obs::kObsEnabled) {
      EXPECT_EQ(oracle_trees_gauge() - gauge_before,
                static_cast<std::int64_t>(unbounded.cached_bytes() +
                                          oracle.cached_bytes()));
    }
  }
  // Destruction returns the gauge to its prior level.
  EXPECT_EQ(oracle_trees_gauge(), gauge_before);
}

TEST(OracleMemory, BoundedPointQueriesAnswerWithoutCaching) {
  Rng rng(6);
  const Graph g = topo::make_waxman(50, 0.4, 0.35, rng);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  oracle.set_bounded_point_queries(true);
  Rng pairs(7);
  for (int i = 0; i < 24; ++i) {
    const NodeId s = static_cast<NodeId>(pairs.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(pairs.below(g.num_nodes()));
    EXPECT_EQ(oracle.dist(s, t), spf::distance(g, s, t));
  }
  EXPECT_EQ(oracle.cached_trees(), 0u);  // point queries cached nothing
}

// --- Experiment sharding ----------------------------------------------------

TEST(ExperimentSharding, ReplaySamplePairMatchesSamplePair) {
  for (const auto& tc : testing::corpus()) {
    spf::DistanceOracle oracle(tc.g, FailureMask{},
                               tc.g.is_unit_weight() ? spf::Metric::Hops
                                                     : spf::Metric::Weighted);
    const graph::Components comps = graph::connected_components(tc.g);
    Rng rng_a(11);
    Rng rng_b(11);
    for (int i = 0; i < 8; ++i) {
      Rng fork_a = rng_a.fork();
      Rng fork_b = rng_b.fork();
      const core::SamplePair real = core::sample_pair(oracle, fork_a);
      const auto [s, t] = core::replay_sample_pair(tc.g, comps, fork_b);
      ASSERT_EQ(real.src, s) << tc.name;
      ASSERT_EQ(real.dst, t) << tc.name;
    }
  }
}

TEST(ExperimentSharding, Table2BitIdenticalAcrossThreadCounts) {
  Rng rng(21);
  const Graph g = topo::make_waxman(40, 0.4, 0.35, rng);
  core::Table2Config cfg;
  cfg.samples = 8;
  cfg.seed = 3;
  cfg.oracle_cache_bytes = 512 << 10;
  core::Table2Config cfg2 = cfg;
  cfg2.threads = 2;
  const core::Table2Row serial =
      core::run_table2(g, core::FailureClass::OneLink, cfg);
  const core::Table2Row sharded =
      core::run_table2(g, core::FailureClass::OneLink, cfg2);
  EXPECT_EQ(serial.cases, sharded.cases);
  EXPECT_EQ(serial.restored, sharded.restored);
  EXPECT_EQ(serial.unrestorable, sharded.unrestorable);
  EXPECT_EQ(serial.max_pc_length, sharded.max_pc_length);
  EXPECT_DOUBLE_EQ(serial.avg_pc_length, sharded.avg_pc_length);
  EXPECT_DOUBLE_EQ(serial.length_stretch, sharded.length_stretch);
  EXPECT_DOUBLE_EQ(serial.redundancy, sharded.redundancy);
}

TEST(ExperimentSharding, StormBitIdenticalAcrossThreadCounts) {
  Rng rng(23);
  const Graph g = topo::make_waxman(40, 0.4, 0.35, rng);
  core::StormConfig cfg;
  cfg.provisioned = 30;
  cfg.events = 6;
  cfg.seed = 5;
  cfg.oracle_cache_bytes = 512 << 10;
  core::StormConfig cfg2 = cfg;
  cfg2.threads = 3;
  const core::StormResult serial = core::run_storm(g, cfg);
  const core::StormResult sharded = core::run_storm(g, cfg2);
  EXPECT_EQ(serial.affected, sharded.affected);
  EXPECT_EQ(serial.restored, sharded.restored);
  EXPECT_EQ(serial.unrestorable, sharded.unrestorable);
  EXPECT_EQ(serial.max_pc_length, sharded.max_pc_length);
  EXPECT_DOUBLE_EQ(serial.avg_pc_length, sharded.avg_pc_length);
}

}  // namespace
}  // namespace rbpc
