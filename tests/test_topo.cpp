// Unit tests for src/topo: generator structure and the paper's gadgets.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "spf/spf.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::topo {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

// --- elementary ------------------------------------------------------------------

TEST(Generators, Ring) {
  const Graph g = make_ring(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(graph::is_two_edge_connected(g));
  EXPECT_THROW(make_ring(2), PreconditionError);
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // 17
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Generators, Complete) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, Chain) {
  const Graph g = make_chain(4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(graph::find_bridges(g).size(), 3u);
}

// --- random models ------------------------------------------------------------------

TEST(Generators, RandomConnectedIsConnectedWithExactEdgeCount) {
  Rng rng(1);
  const Graph g = make_random_connected(50, 120, rng, 10);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 120u);
  EXPECT_TRUE(graph::is_connected(g));
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 1);
    EXPECT_LE(e.weight, 10);
  }
}

TEST(Generators, RandomConnectedRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(make_random_connected(10, 8, rng), PreconditionError);
  EXPECT_THROW(make_random_connected(4, 7, rng), PreconditionError);
}

TEST(Generators, RandomConnectedDeterministicPerSeed) {
  Rng a(3);
  Rng b(3);
  const Graph g1 = make_random_connected(30, 60, a, 5);
  const Graph g2 = make_random_connected(30, 60, b, 5);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (std::size_t e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
    EXPECT_EQ(g1.edge(e).weight, g2.edge(e).weight);
  }
}

TEST(Generators, WaxmanConnected) {
  Rng rng(5);
  const Graph g = make_waxman(80, 0.6, 0.25, rng);
  EXPECT_EQ(g.num_nodes(), 80u);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Generators, BarabasiAlbertDegreeStructure) {
  Rng rng(7);
  const Graph g = make_barabasi_albert(500, 2, 0.0, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(graph::is_connected(g));
  // m = 2 attachments: every non-seed node has degree >= 2, and
  // edges = seed C(3,2) + 2 * (n - 3).
  EXPECT_EQ(g.num_edges(), 3u + 2u * (500 - 3));
  const auto stats = graph::degree_stats(g);
  EXPECT_GE(stats.min, 2u);
  // Preferential attachment produces hubs far above the mean.
  EXPECT_GT(stats.max, 20u);
}

TEST(Generators, BarabasiAlbertExtraFraction) {
  Rng rng(9);
  const Graph g = make_barabasi_albert(1000, 2, 0.5, rng);
  const double avg_attach =
      static_cast<double>(g.num_edges() - 3) / static_cast<double>(1000 - 3);
  EXPECT_NEAR(avg_attach, 2.5, 0.1);
}

// --- paper-scale topologies -----------------------------------------------------------

TEST(Generators, IspLikeMatchesTable1) {
  Rng rng(11);
  const Graph g = make_isp_like(rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_NEAR(g.average_degree(), 3.56, 0.25);
  EXPECT_TRUE(graph::is_connected(g));
  // The construction (rings + dual-homing) should be single-failure
  // survivable.
  EXPECT_TRUE(graph::is_two_edge_connected(g));
  EXPECT_FALSE(g.is_unit_weight());
}

TEST(Generators, IspLikeUnweightedVariant) {
  Rng rng(11);
  const Graph g = make_isp_like(rng, /*weighted=*/false);
  EXPECT_TRUE(g.is_unit_weight());
}

TEST(Generators, AsLikeScaledMatchesTable1Shape) {
  Rng rng(13);
  const Graph g = make_as_like(rng, 0.1);  // 474 nodes for test speed
  EXPECT_EQ(g.num_nodes(), 474u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_NEAR(g.average_degree(), 4.16, 0.4);
}

TEST(Generators, InternetLikeScaledMatchesTable1Shape) {
  Rng rng(17);
  const Graph g = make_internet_like(rng, 0.02);  // 807 nodes
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_NEAR(g.average_degree(), 5.03, 0.5);
}

TEST(Generators, ScaleValidation) {
  Rng rng(1);
  EXPECT_THROW(make_as_like(rng, 0.0), PreconditionError);
  EXPECT_THROW(make_as_like(rng, -1.0), PreconditionError);
  EXPECT_THROW(make_internet_like(rng, 0.0), PreconditionError);
}

TEST(Generators, ScaleAboveOnePreservesDegree) {
  // Growth beyond the Table-1 size must keep the degree structure: the
  // attachment process is scale-free, so a 2x AS graph has the same average
  // degree as the 1x instance.
  Rng rng(19);
  const Graph g = make_as_like(rng, 2.0);
  EXPECT_EQ(g.num_nodes(), 9492u);  // 2 * 4746
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_NEAR(g.average_degree(), 4.16, 0.4);
}

// --- gadgets ---------------------------------------------------------------------------

TEST(Gadgets, CombStructure) {
  const auto comb = make_comb(3);
  EXPECT_EQ(comb.g.num_nodes(), 7u);   // 4 spine + 3 teeth
  EXPECT_EQ(comb.g.num_edges(), 9u);   // 3 spine + 2*3 tooth edges
  EXPECT_EQ(comb.spine_edges.size(), 3u);
  EXPECT_EQ(spf::distance(comb.g, comb.s, comb.t,
                          FailureMask::none(),
                          spf::SpfOptions{.metric = spf::Metric::Hops}),
            3);
  // Failing the spine doubles the distance (each hop becomes two).
  EXPECT_EQ(spf::distance(comb.g, comb.s, comb.t,
                          FailureMask::of_edges(comb.spine_edges),
                          spf::SpfOptions{.metric = spf::Metric::Hops}),
            6);
}

TEST(Gadgets, WeightedChainStructure) {
  const auto chain = make_weighted_chain(2);
  EXPECT_EQ(chain.g.num_nodes(), 6u);
  EXPECT_EQ(chain.cheap_parallel_edges.size(), 2u);
  EXPECT_EQ(chain.epsilon_edges.size(), 2u);
  const auto base = spf::distance(chain.g, chain.s, chain.t);
  // All five segments at cheap cost.
  EXPECT_EQ(base, 5 * WeightedChainGadget::kCheap);
  const auto after =
      spf::distance(chain.g, chain.s, chain.t,
                    FailureMask::of_edges(chain.cheap_parallel_edges));
  EXPECT_EQ(after, 5 * WeightedChainGadget::kCheap + 2);  // two epsilons
}

TEST(Gadgets, TwoLevelStarDistances) {
  const auto star = make_two_level_star(8);
  // Any two routers are within distance 2 via the hub.
  for (NodeId u = 1; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) {
      EXPECT_LE(spf::distance(star.g, u, v, FailureMask::none(),
                              spf::SpfOptions{.metric = spf::Metric::Hops}),
                2);
    }
  }
  // After the hub fails, s..t must walk the whole chain.
  EXPECT_EQ(spf::distance(star.g, star.s, star.t,
                          FailureMask::of_nodes({star.hub}),
                          spf::SpfOptions{.metric = spf::Metric::Hops}),
            static_cast<graph::Weight>(6));
}

TEST(Gadgets, DirectedCounterexampleDistances) {
  const auto gadget = make_directed_counterexample(9);
  EXPECT_TRUE(gadget.g.directed());
  // Before failure: every chain pair at distance min(j - i, 3).
  EXPECT_EQ(spf::distance(gadget.g, 0, 9, FailureMask::none(),
                          spf::SpfOptions{.metric = spf::Metric::Hops}),
            3);
  EXPECT_EQ(spf::distance(gadget.g, 0, 2, FailureMask::none(),
                          spf::SpfOptions{.metric = spf::Metric::Hops}),
            2);
  // After (a, b) fails, only the chain remains.
  EXPECT_EQ(spf::distance(gadget.g, 0, 9,
                          FailureMask::of_edges({gadget.ab_edge}),
                          spf::SpfOptions{.metric = spf::Metric::Hops}),
            9);
}

TEST(Gadgets, FourCycle) {
  const Graph g = make_four_cycle();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(graph::is_two_edge_connected(g));
}

TEST(Gadgets, ParallelChainStructure) {
  const auto pc = make_parallel_chain(2);
  EXPECT_EQ(pc.g.num_nodes(), 6u);
  EXPECT_EQ(pc.pairs.size(), 5u);
  EXPECT_EQ(pc.g.num_edges(), 10u);
  // Parallel pairs: failing one edge of a pair leaves distance unchanged.
  FailureMask m;
  m.fail_edge(pc.pairs[0].first);
  EXPECT_EQ(spf::distance(pc.g, pc.s, pc.t, m), 5);
}

TEST(Gadgets, ParameterValidation) {
  EXPECT_THROW(make_comb(0), PreconditionError);
  EXPECT_THROW(make_weighted_chain(0), PreconditionError);
  EXPECT_THROW(make_two_level_star(4), PreconditionError);
  EXPECT_THROW(make_directed_counterexample(3), PreconditionError);
  EXPECT_THROW(make_parallel_chain(0), PreconditionError);
}

}  // namespace
}  // namespace rbpc::topo
