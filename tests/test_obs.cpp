// Tests for the observability subsystem (src/obs): the striped metrics
// registry, scoped trace spans, and the Chrome trace-event export.
//
// This suite is a standalone binary (see tests/CMakeLists.txt) because CI
// also runs it under ThreadSanitizer: the hammer tests below drive many
// writer threads into one counter/histogram while a scraper snapshots
// concurrently, which is exactly the access pattern the striped cells must
// keep race-free.
//
// Under RBPC_OBS_DISABLED the increments are compiled out; tests that
// assert on recorded values skip themselves via obs::kObsEnabled, while
// the API-shape tests still run (the registry must stay usable either
// way).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/histogram.hpp"

namespace rbpc::obs {
namespace {

TEST(MetricsRegistry, SameNameSharesCells) {
  MetricsRegistry reg;
  Counter a = reg.counter("x");
  Counter b = reg.counter("x");
  a.add(3);
  b.add(4);
  if (kObsEnabled) {
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(b.value(), 7u);
  } else {
    EXPECT_EQ(a.value(), 0u);
  }
}

TEST(MetricsRegistry, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(5);
  g.set(9);
  h.record(1);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, GaugeSetAddSetMax) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Gauge g = reg.gauge("g");
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(5);  // below current: no change
  EXPECT_EQ(g.value(), 7);
  g.set_max(42);
  EXPECT_EQ(g.value(), 42);
}

TEST(MetricsRegistry, HistogramSnapshotMergesStripes) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat");
  h.record(100);
  h.record(100);
  h.record(5000);
  const LatencyHistogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_EQ(snap.sum(), 5200u);
  EXPECT_EQ(snap.bucket_count(LatencyHistogram::bucket_of(100)), 2u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(-5);
  reg.histogram("h").record(7);
  const MetricsRegistry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count(), 1u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 1"), std::string::npos);
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("a 1"), std::string::npos);
  EXPECT_NE(text.find("h/count 1"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Counter c = reg.counter("c");
  Histogram h = reg.histogram("h");
  c.add(9);
  h.record(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(InstanceCounter, LocalValueWorksRegardlessOfBuild) {
  MetricsRegistry reg;
  InstanceCounter ic(reg.counter("mirrored"));
  ic.inc();
  ic.add(4);
  // The local count must work even when the registry mirror is compiled
  // out — TreeCache/BatchRestorer accessors depend on it.
  EXPECT_EQ(ic.value(), 5u);
  if (kObsEnabled) {
    EXPECT_EQ(reg.counter("mirrored").value(), 5u);
  }
}

// --- Concurrency (the TSan targets) ----------------------------------------

TEST(MetricsConcurrency, HammeredCounterTotalsAreExact) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::atomic<bool> stop{false};

  // Scraper: snapshots continuously while the writers run. Totals observed
  // mid-run are not asserted exact (writers are in flight), only
  // well-formed; the exactness assertion comes after the join.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsRegistry::Snapshot snap = reg.snapshot();
      for (const auto& c : snap.counters) {
        EXPECT_LE(c.value, kThreads * kPerThread);
      }
      for (const auto& h : snap.histograms) {
        EXPECT_LE(h.hist.count(), kThreads * kPerThread);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      Counter c = reg.counter("hammer.count");
      Histogram h = reg.histogram("hammer.lat");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(i & 0x3ff);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(reg.counter("hammer.count").value(), kThreads * kPerThread);
  const LatencyHistogram h = reg.histogram("hammer.lat").snapshot();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Each thread records 0..kPerThread-1 masked to 10 bits; the sum is
  // deterministic, so the sharded sums must fold to it exactly.
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) expected_sum += i & 0x3ff;
  EXPECT_EQ(h.sum(), kThreads * expected_sum);
}

TEST(MetricsConcurrency, GaugeSetMaxIsMonotoneUnderRaces) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Gauge g = reg.gauge("high.water");
  std::vector<std::thread> writers;
  for (int t = 1; t <= 8; ++t) {
    writers.emplace_back([&reg, t] {
      Gauge mine = reg.gauge("high.water");
      for (int i = 0; i < 20000; ++i) {
        mine.set_max(static_cast<std::int64_t>(t) * 1000 + (i % 1000));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(g.value(), 8999);  // max over every value any thread offered
}

// --- Spans and tracing ------------------------------------------------------

TEST(TraceSpan, RecordsDurationIntoNamedHistogram) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Histogram h = MetricsRegistry::global().histogram("test.span.hist");
  const std::uint64_t before = h.snapshot().count();
  {
    RBPC_TRACE_SPAN("test.span.hist");
  }
  EXPECT_EQ(h.snapshot().count(), before + 1);
}

TEST(TraceSpan, NestedSpansExportChromeJson) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  std::thread worker([] {
    RBPC_TRACE_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) {
      RBPC_TRACE_SPAN("test.inner");
    }
  });
  worker.join();
  tracer.disable();

  const std::vector<TraceEvent> events = tracer.events();
  std::size_t outer = 0;
  std::size_t inner = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test.outer") ++outer;
    if (std::string(e.name) == "test.inner") ++inner;
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 3u);

  // Nesting: the outer span's [ts, ts+dur] window contains every inner
  // occurrence (how chrome://tracing decides to nest complete events).
  const TraceEvent* out_ev = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test.outer") out_ev = &e;
  }
  ASSERT_NE(out_ev, nullptr);
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "test.inner") continue;
    EXPECT_GE(e.ts_ns, out_ev->ts_ns);
    EXPECT_LE(e.ts_ns + e.dur_ns, out_ev->ts_ns + out_ev->dur_ns);
  }

  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  tracer.clear();
}

TEST(TraceSpan, DisabledTracerRecordsNoEvents) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.disable();
  {
    RBPC_TRACE_SPAN("test.untraced");
  }
  std::size_t untraced = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (std::string(e.name) == "test.untraced") ++untraced;
  }
  EXPECT_EQ(untraced, 0u);
}

TEST(TraceSpan, ConcurrentSpansAllRecorded) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  constexpr int kThreads = 8;
  constexpr int kSpansPer = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPer; ++i) {
        RBPC_TRACE_SPAN("test.mt.span");
      }
    });
  }
  // Scrape the trace while the workers record into it (exercises the
  // reader/writer locking; counts observed mid-run are not asserted).
  for (int i = 0; i < 8; ++i) {
    (void)tracer.events().size();
  }
  for (std::thread& w : workers) w.join();
  tracer.disable();

  std::size_t spans = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (std::string(e.name) == "test.mt.span") ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kSpansPer);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.clear();
}

TEST(TraceSpan, BoundedBufferCountsDropsIntoTheRegistry) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const std::size_t old_cap = tracer.max_events_per_thread();
  const std::uint64_t dropped_before = tracer.dropped();
  const std::uint64_t reg_before =
      MetricsRegistry::global().counter("obs.trace.dropped").value();
  tracer.set_max_events_per_thread(16);
  tracer.enable();
  // A fresh thread gets an empty buffer, so exactly cap events fit and the
  // overflow is a deterministic 64 - 16.
  std::thread([&tracer] {
    for (int i = 0; i < 64; ++i) {
      tracer.record("test.drop.span", now_ns(), 1);
    }
  }).join();
  tracer.disable();
  EXPECT_EQ(tracer.dropped() - dropped_before, 64u - 16u);
  EXPECT_EQ(MetricsRegistry::global().counter("obs.trace.dropped").value() -
                reg_before,
            64u - 16u);
  // The buffered gauge tracks live events and clears with the buffers.
  EXPECT_GE(MetricsRegistry::global().gauge("obs.trace.buffered").value(),
            16);
  tracer.clear();
  EXPECT_EQ(MetricsRegistry::global().gauge("obs.trace.buffered").value(), 0);
  tracer.set_max_events_per_thread(old_cap);

  std::size_t kept = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (std::string(e.name) == "test.drop.span") ++kept;
  }
  EXPECT_EQ(kept, 0u);  // clear() dropped them
}

TEST(TraceSpan, ZeroCapClampsToOne) {
  Tracer& tracer = Tracer::global();
  const std::size_t old_cap = tracer.max_events_per_thread();
  tracer.set_max_events_per_thread(0);
  EXPECT_EQ(tracer.max_events_per_thread(), 1u);
  tracer.set_max_events_per_thread(old_cap);
}

// --- Prometheus exposition -------------------------------------------------

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(prometheus_name("svc.restore.latency"), "svc_restore_latency");
  EXPECT_EQ(prometheus_name("already_fine:name"), "already_fine:name");
  EXPECT_EQ(prometheus_name("bad-chars and+spaces"), "bad_chars_and_spaces");
  EXPECT_EQ(prometheus_name("0starts.with.digit"), "_0starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(Exposition, CountersGaugesAndHistogramShape) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  reg.counter("exp.count").add(5);
  reg.gauge("exp.gauge").set(-3);
  Histogram h = reg.histogram("exp.lat");
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(900);
  const std::string text = to_prometheus(reg.snapshot());

  EXPECT_NE(text.find("# TYPE exp_count_total counter"), std::string::npos);
  EXPECT_NE(text.find("exp_count_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("exp_gauge -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("exp_lat_sum 906"), std::string::npos);
  EXPECT_NE(text.find("exp_lat_count 4"), std::string::npos);
  // The +Inf bucket carries the total count.
  EXPECT_NE(text.find("exp_lat_bucket{le=\"+Inf\"} 4"), std::string::npos);

  // Bucket series are cumulative: counts never decrease as le increases.
  std::istringstream lines(text);
  std::string line;
  double prev = -1.0;
  std::size_t buckets = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("exp_lat_bucket{", 0) != 0) continue;
    const std::size_t sp = line.rfind(' ');
    const double count = std::stod(line.substr(sp + 1));
    EXPECT_GE(count, prev) << line;
    prev = count;
    ++buckets;
  }
  EXPECT_GE(buckets, 3u);
}

TEST(Exposition, ExemplarSyntaxOnBucketLines) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Histogram h = reg.histogram("exp.ex");
  h.record_with_exemplar(100, 4242);
  h.record(100);  // plain record must not disturb the exemplar
  const std::string text = to_prometheus(reg.snapshot());
  // OpenMetrics-style: `<bucket sample> # {request_id="4242"} 100`.
  const std::size_t pos = text.find("# {request_id=\"4242\"} 100");
  ASSERT_NE(pos, std::string::npos) << text;
  const std::size_t line_start = text.rfind('\n', pos) + 1;
  EXPECT_EQ(text.compare(line_start, 14, "exp_ex_bucket{"), 0)
      << "exemplar must ride a bucket line";
  // id 0 is "no exemplar": nothing recorded for an untagged histogram.
  MetricsRegistry reg2;
  reg2.histogram("exp.plain").record_with_exemplar(7, 0);
  EXPECT_EQ(to_prometheus(reg2.snapshot()).find("request_id"),
            std::string::npos);
}

// --- Quantile error bound --------------------------------------------------

TEST(LatencyHistogramBound, QuantileIsUpperBoundWithinFactorTwo) {
  // The documented contract (util/histogram.hpp, relied on by SLO
  // objectives): the reported quantile is >= the true quantile and < 2x it
  // for true values >= 1 (bucket i spans [2^(i-1), 2^i), reported as its
  // upper bound). Checked against an exact nearest-rank computation over
  // assorted value shapes.
  const std::vector<std::vector<std::uint64_t>> shapes = {
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
      {1, 1, 1, 1000},
      {7, 13, 255, 256, 257, 4096, 70'000},
      {1'000'000, 2'000'000, 3'000'000},
      {0, 0, 0, 0, 1},
  };
  for (const auto& values : shapes) {
    LatencyHistogram h;
    std::vector<std::uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (const std::uint64_t v : values) h.record(v);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      // Same nearest-rank definition as the histogram: smallest 1-based
      // rank r with r >= q * n.
      const std::size_t rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(sorted.size()))));
      const std::uint64_t exact = sorted[rank - 1];
      const std::uint64_t reported = h.quantile(q);
      EXPECT_GE(reported, exact) << "q=" << q;
      EXPECT_LT(reported, 2 * std::max<std::uint64_t>(exact, 1))
          << "q=" << q << " exact=" << exact;
    }
  }
}

}  // namespace
}  // namespace rbpc::obs
