// Tests for the observability subsystem (src/obs): the striped metrics
// registry, scoped trace spans, and the Chrome trace-event export.
//
// This suite is a standalone binary (see tests/CMakeLists.txt) because CI
// also runs it under ThreadSanitizer: the hammer tests below drive many
// writer threads into one counter/histogram while a scraper snapshots
// concurrently, which is exactly the access pattern the striped cells must
// keep race-free.
//
// Under RBPC_OBS_DISABLED the increments are compiled out; tests that
// assert on recorded values skip themselves via obs::kObsEnabled, while
// the API-shape tests still run (the registry must stay usable either
// way).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rbpc::obs {
namespace {

TEST(MetricsRegistry, SameNameSharesCells) {
  MetricsRegistry reg;
  Counter a = reg.counter("x");
  Counter b = reg.counter("x");
  a.add(3);
  b.add(4);
  if (kObsEnabled) {
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(b.value(), 7u);
  } else {
    EXPECT_EQ(a.value(), 0u);
  }
}

TEST(MetricsRegistry, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(5);
  g.set(9);
  h.record(1);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, GaugeSetAddSetMax) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Gauge g = reg.gauge("g");
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(5);  // below current: no change
  EXPECT_EQ(g.value(), 7);
  g.set_max(42);
  EXPECT_EQ(g.value(), 42);
}

TEST(MetricsRegistry, HistogramSnapshotMergesStripes) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat");
  h.record(100);
  h.record(100);
  h.record(5000);
  const LatencyHistogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_EQ(snap.sum(), 5200u);
  EXPECT_EQ(snap.bucket_count(LatencyHistogram::bucket_of(100)), 2u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(-5);
  reg.histogram("h").record(7);
  const MetricsRegistry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count(), 1u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 1"), std::string::npos);
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("a 1"), std::string::npos);
  EXPECT_NE(text.find("h/count 1"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Counter c = reg.counter("c");
  Histogram h = reg.histogram("h");
  c.add(9);
  h.record(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(InstanceCounter, LocalValueWorksRegardlessOfBuild) {
  MetricsRegistry reg;
  InstanceCounter ic(reg.counter("mirrored"));
  ic.inc();
  ic.add(4);
  // The local count must work even when the registry mirror is compiled
  // out — TreeCache/BatchRestorer accessors depend on it.
  EXPECT_EQ(ic.value(), 5u);
  if (kObsEnabled) {
    EXPECT_EQ(reg.counter("mirrored").value(), 5u);
  }
}

// --- Concurrency (the TSan targets) ----------------------------------------

TEST(MetricsConcurrency, HammeredCounterTotalsAreExact) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::atomic<bool> stop{false};

  // Scraper: snapshots continuously while the writers run. Totals observed
  // mid-run are not asserted exact (writers are in flight), only
  // well-formed; the exactness assertion comes after the join.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsRegistry::Snapshot snap = reg.snapshot();
      for (const auto& c : snap.counters) {
        EXPECT_LE(c.value, kThreads * kPerThread);
      }
      for (const auto& h : snap.histograms) {
        EXPECT_LE(h.hist.count(), kThreads * kPerThread);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      Counter c = reg.counter("hammer.count");
      Histogram h = reg.histogram("hammer.lat");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(i & 0x3ff);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(reg.counter("hammer.count").value(), kThreads * kPerThread);
  const LatencyHistogram h = reg.histogram("hammer.lat").snapshot();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Each thread records 0..kPerThread-1 masked to 10 bits; the sum is
  // deterministic, so the sharded sums must fold to it exactly.
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) expected_sum += i & 0x3ff;
  EXPECT_EQ(h.sum(), kThreads * expected_sum);
}

TEST(MetricsConcurrency, GaugeSetMaxIsMonotoneUnderRaces) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  MetricsRegistry reg;
  Gauge g = reg.gauge("high.water");
  std::vector<std::thread> writers;
  for (int t = 1; t <= 8; ++t) {
    writers.emplace_back([&reg, t] {
      Gauge mine = reg.gauge("high.water");
      for (int i = 0; i < 20000; ++i) {
        mine.set_max(static_cast<std::int64_t>(t) * 1000 + (i % 1000));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(g.value(), 8999);  // max over every value any thread offered
}

// --- Spans and tracing ------------------------------------------------------

TEST(TraceSpan, RecordsDurationIntoNamedHistogram) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Histogram h = MetricsRegistry::global().histogram("test.span.hist");
  const std::uint64_t before = h.snapshot().count();
  {
    RBPC_TRACE_SPAN("test.span.hist");
  }
  EXPECT_EQ(h.snapshot().count(), before + 1);
}

TEST(TraceSpan, NestedSpansExportChromeJson) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  std::thread worker([] {
    RBPC_TRACE_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) {
      RBPC_TRACE_SPAN("test.inner");
    }
  });
  worker.join();
  tracer.disable();

  const std::vector<TraceEvent> events = tracer.events();
  std::size_t outer = 0;
  std::size_t inner = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test.outer") ++outer;
    if (std::string(e.name) == "test.inner") ++inner;
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 3u);

  // Nesting: the outer span's [ts, ts+dur] window contains every inner
  // occurrence (how chrome://tracing decides to nest complete events).
  const TraceEvent* out_ev = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test.outer") out_ev = &e;
  }
  ASSERT_NE(out_ev, nullptr);
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "test.inner") continue;
    EXPECT_GE(e.ts_ns, out_ev->ts_ns);
    EXPECT_LE(e.ts_ns + e.dur_ns, out_ev->ts_ns + out_ev->dur_ns);
  }

  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  tracer.clear();
}

TEST(TraceSpan, DisabledTracerRecordsNoEvents) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.disable();
  {
    RBPC_TRACE_SPAN("test.untraced");
  }
  std::size_t untraced = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (std::string(e.name) == "test.untraced") ++untraced;
  }
  EXPECT_EQ(untraced, 0u);
}

TEST(TraceSpan, ConcurrentSpansAllRecorded) {
  if (!kObsEnabled) GTEST_SKIP() << "built with RBPC_OBS_DISABLED";
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  constexpr int kThreads = 8;
  constexpr int kSpansPer = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPer; ++i) {
        RBPC_TRACE_SPAN("test.mt.span");
      }
    });
  }
  // Scrape the trace while the workers record into it (exercises the
  // reader/writer locking; counts observed mid-run are not asserted).
  for (int i = 0; i < 8; ++i) {
    (void)tracer.events().size();
  }
  for (std::thread& w : workers) w.join();
  tracer.disable();

  std::size_t spans = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (std::string(e.name) == "test.mt.span") ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kSpansPer);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.clear();
}

}  // namespace
}  // namespace rbpc::obs
