// Unit tests for src/util: RNG, statistics, histograms, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rbpc {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(13);
  const auto sample = rng.sample_distinct(100, 30);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(13);
  const auto sample = rng.sample_distinct(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleDistinctRejectsOversample) {
  Rng rng(13);
  EXPECT_THROW(rng.sample_distinct(5, 6), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child stream should differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 4);
}

// --- StatAccumulator -----------------------------------------------------------

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatAccumulator, EmptyThrows) {
  StatAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW(acc.mean(), PreconditionError);
  EXPECT_THROW(acc.min(), PreconditionError);
  EXPECT_THROW(acc.max(), PreconditionError);
}

TEST(StatAccumulator, SingleValueHasZeroVariance) {
  StatAccumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator whole;
  StatAccumulator left;
  StatAccumulator right;
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StatAccumulator, MergeWithEmpty) {
  StatAccumulator a;
  a.add(1.0);
  StatAccumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

// --- QuantileSketch -------------------------------------------------------------

TEST(QuantileSketch, ExactQuantiles) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.median(), 50.0, 1.0);
}

TEST(QuantileSketch, EmptyThrows) {
  QuantileSketch q;
  EXPECT_THROW(q.quantile(0.5), PreconditionError);
}

TEST(QuantileSketch, AddAfterQuery) {
  QuantileSketch q;
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.median(), 1.0);
  q.add(100.0);
  q.add(101.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 101.0);
}

// --- RatioOfMeans ----------------------------------------------------------------

TEST(RatioOfMeans, IsRatioOfSums) {
  RatioOfMeans r;
  r.add(4.0, 2.0);
  r.add(2.0, 2.0);
  // mean(num) / mean(den) = 3/2.
  EXPECT_DOUBLE_EQ(r.value(), 1.5);
}

TEST(RatioOfMeans, ZeroDenominatorThrows) {
  RatioOfMeans r;
  r.add(1.0, 0.0);
  EXPECT_THROW(r.value(), PreconditionError);
}

// --- IntHistogram ------------------------------------------------------------------

TEST(IntHistogram, CountsAndFractions) {
  IntHistogram h;
  h.add(2);
  h.add(2);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.5);
  EXPECT_EQ(h.min_key(), 2);
  EXPECT_EQ(h.max_key(), 7);
}

TEST(IntHistogram, EmptyBehaviour) {
  IntHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
  EXPECT_THROW(h.min_key(), PreconditionError);
}

TEST(IntHistogram, WeightedAdd) {
  IntHistogram h;
  h.add(1, 10);
  h.add(2, 30);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

// --- BinnedHistogram -----------------------------------------------------------------

TEST(BinnedHistogram, BinPlacement) {
  BinnedHistogram h(1.0, 2.0, 10);
  h.add(1.0);   // bin 0
  h.add(1.05);  // bin 0
  h.add(1.15);  // bin 1
  h.add(1.999);  // bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(BinnedHistogram, OutOfRangeClamps) {
  BinnedHistogram h(1.0, 2.0, 4);
  h.add(0.5);
  h.add(99.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(BinnedHistogram, EdgesAndLabels) {
  BinnedHistogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 0.5);
  EXPECT_EQ(h.bin_label(0), "[0.00,0.25)");
}

TEST(BinnedHistogram, InvalidConstruction) {
  EXPECT_THROW(BinnedHistogram(2.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(BinnedHistogram(0.0, 1.0, 0), PreconditionError);
}

// --- TablePrinter -------------------------------------------------------------------

TEST(TablePrinter, TextLayout) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  // Header comes first.
  EXPECT_LT(text.find("name"), text.find("alpha"));
}

TEST(TablePrinter, MarkdownLayout) {
  TablePrinter t({"a", "b"});
  t.add_row({"x", "y"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::percent(0.256, 1), "25.6%");
}

// --- CliArgs -----------------------------------------------------------------------

TEST(CliArgs, ParsesSeparateAndEqualsForms) {
  const char* argv[] = {"prog", "--samples", "40", "--seed=7", "--flag"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("samples", 0), 40);
  EXPECT_EQ(args.get_int("seed", 0), 7);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_int("missing", 123), 123);
}

TEST(CliArgs, RejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliArgs(2, argv), InputError);
}

TEST(CliArgs, RejectsBadInteger) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliArgs args(3, argv);
  EXPECT_THROW(args.get_int("n", 0), InputError);
}

TEST(CliArgs, UintRejectsNegative) {
  const char* argv[] = {"prog", "--n", "-4"};
  CliArgs args(3, argv);
  EXPECT_THROW(args.get_uint("n", 0), InputError);
}

TEST(CliArgs, DoubleAndBoolParsing) {
  const char* argv[] = {"prog", "--x=2.5", "--b=no"};
  CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_THROW(args.get_bool("x", false), InputError);
}

// --- LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_lo(i)), i);
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_hi(i)), i);
  }
}

TEST(LatencyHistogram, RecordCountSumMean) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.mean(), PreconditionError);
  h.record(10);
  h.record(20, 2);  // weight 2
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 50u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.0 / 3.0);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::bucket_of(10)), 1u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::bucket_of(20)), 2u);
}

TEST(LatencyHistogram, QuantileNearestRank) {
  LatencyHistogram h;
  EXPECT_THROW(h.quantile(0.5), PreconditionError);
  for (int i = 0; i < 90; ++i) h.record(10);   // bucket [8, 15]
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket [512, 1023]
  // Quantiles are reported as the containing bucket's upper bound.
  EXPECT_EQ(h.quantile(0.0), 15u);
  EXPECT_EQ(h.quantile(0.5), 15u);
  EXPECT_EQ(h.quantile(0.9), 15u);
  EXPECT_EQ(h.quantile(0.91), 1023u);
  EXPECT_EQ(h.quantile(1.0), 1023u);
}

TEST(LatencyHistogram, MergeMatchesSequential) {
  LatencyHistogram a, b, all;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.below(100000);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), all.bucket_count(i));
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(LatencyHistogram, MergeWithEmptyAndAddBucket) {
  LatencyHistogram a;
  a.record(42);
  LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.sum(), 42u);

  // add_bucket is the scrape primitive: counts land in the given bucket,
  // the sum is carried exactly.
  LatencyHistogram s;
  s.add_bucket(LatencyHistogram::bucket_of(42), 3, 126);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.sum(), 126u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_THROW(s.add_bucket(LatencyHistogram::kBuckets, 1, 0),
               PreconditionError);
}

}  // namespace
}  // namespace rbpc
