// Tests for core/traffic (demand matrices, link loads) and the MPLS
// forwarding counters.
#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "mpls/network.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

TEST(DemandMatrix, UniformTotals) {
  const auto m = DemandMatrix::uniform(4, 2.0);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.demand(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.total(), 4.0 * 3.0 * 2.0);
}

TEST(DemandMatrix, GravityScalesToTotal) {
  Rng rng(301);
  const auto m = DemandMatrix::gravity(10, 500.0, rng);
  EXPECT_NEAR(m.total(), 500.0, 1e-6);
  for (NodeId v = 0; v < 10; ++v) EXPECT_DOUBLE_EQ(m.demand(v, v), 0.0);
  // Heavy tail: the largest pair demand well above the mean pair demand.
  double max_d = 0;
  for (NodeId s = 0; s < 10; ++s) {
    for (NodeId t = 0; t < 10; ++t) max_d = std::max(max_d, m.demand(s, t));
  }
  EXPECT_GT(max_d, 500.0 / 90.0 * 2.0);
}

TEST(DemandMatrix, Validation) {
  DemandMatrix m(3);
  EXPECT_THROW(m.set_demand(0, 0, 1.0), PreconditionError);
  EXPECT_THROW(m.set_demand(0, 1, -1.0), PreconditionError);
  EXPECT_THROW(m.demand(0, 5), PreconditionError);
  Rng rng(1);
  EXPECT_THROW(DemandMatrix::gravity(1, 10.0, rng), PreconditionError);
  EXPECT_THROW(DemandMatrix::gravity(4, 0.0, rng), PreconditionError);
}

TEST(RouteDemands, AccumulatesOnRingShortestPaths) {
  const Graph g = topo::make_ring(4);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  const auto demands = DemandMatrix::uniform(4, 1.0);
  const LinkLoads loads = route_demands(g, demands, [&](NodeId s, NodeId t) {
    return oracle.canonical_path(s, t);
  });
  EXPECT_DOUBLE_EQ(loads.unrouted, 0.0);
  // Total carried volume = sum over pairs of hops: adjacent pairs (8
  // ordered) 1 hop; antipodal (4 ordered) 2 hops => 8 + 8 = 16.
  double total = 0;
  for (double l : loads.load) total += l;
  EXPECT_DOUBLE_EQ(total, 16.0);
  EXPECT_GT(loads.max_load(), 0.0);
  EXPECT_GE(loads.max_load(), loads.mean_load());
}

TEST(RouteDemands, UnroutedDemandCounted) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  const auto demands = DemandMatrix::uniform(4, 1.0);
  const LinkLoads loads = route_demands(g, demands, [&](NodeId s, NodeId t) {
    return oracle.canonical_path(s, t);
  });
  // 8 of 12 ordered pairs cross components.
  EXPECT_DOUBLE_EQ(loads.unrouted, 8.0);
}

TEST(RouteDemands, FailureShiftsLoad) {
  const Graph g = topo::make_ring(6);
  const auto demands = DemandMatrix::uniform(6, 1.0);
  spf::DistanceOracle before_oracle(g, FailureMask{}, spf::Metric::Hops);
  spf::DistanceOracle after_oracle(g, FailureMask::of_edges({0}),
                                   spf::Metric::Hops);
  const LinkLoads before = route_demands(g, demands, [&](NodeId s, NodeId t) {
    return before_oracle.canonical_path(s, t);
  });
  const LinkLoads after = route_demands(g, demands, [&](NodeId s, NodeId t) {
    return after_oracle.canonical_path(s, t);
  });
  EXPECT_GT(before.load[0], 0.0);
  EXPECT_DOUBLE_EQ(after.load[0], 0.0);  // failed link carries nothing
  // Displaced demand lands on the surviving links.
  EXPECT_GT(after.max_load(), before.max_load());
}

TEST(RouteDemands, Validation) {
  const Graph g = topo::make_ring(4);
  const auto wrong = DemandMatrix::uniform(5, 1.0);
  EXPECT_THROW(route_demands(g, wrong, [](NodeId, NodeId) { return Path{}; }),
               PreconditionError);
  const auto ok = DemandMatrix::uniform(4, 1.0);
  EXPECT_THROW(route_demands(g, ok, nullptr), PreconditionError);
}

TEST(ForwardStats, CountersTrackTraffic) {
  const Graph g = topo::make_chain(3);
  mpls::Network net(g);
  const auto lsp = net.provision_lsp(Path::from_nodes(g, {0, 1, 2}));
  net.set_fec_chain(0, 2, {lsp});

  EXPECT_EQ(net.stats().packets, 0u);
  net.send(0, 2);
  EXPECT_EQ(net.stats().packets, 1u);
  EXPECT_EQ(net.stats().delivered, 1u);
  EXPECT_EQ(net.stats().link_hops, 2u);
  EXPECT_EQ(net.stats().label_ops, 3u);  // ingress + transit + egress pop

  net.send(1, 2);  // no FEC entry at router 1
  EXPECT_EQ(net.stats().packets, 2u);
  EXPECT_EQ(net.stats().dropped, 1u);

  net.reset_stats();
  EXPECT_EQ(net.stats().packets, 0u);
}

}  // namespace
}  // namespace rbpc::core
