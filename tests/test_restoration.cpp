// Unit tests for core/restoration: source RBPC and the local schemes.
#include <gtest/gtest.h>

#include "core/base_set.hpp"
#include "core/restoration.hpp"
#include "graph/analysis.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

TEST(SourceRbpc, RestoresAroundSingleFailure) {
  const Graph g = topo::make_ring(6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  const Restoration r = source_rbpc_restore(set, 0, 2, FailureMask::of_edges({0}));
  ASSERT_TRUE(r.restored());
  EXPECT_EQ(r.backup.source(), 0u);
  EXPECT_EQ(r.backup.target(), 2u);
  EXPECT_EQ(r.backup.hops(), 4u);  // around the other side
  EXPECT_LE(r.pc_length(), 2u);    // Theorem 1, k=1
  EXPECT_EQ(r.decomposition.joined(), r.backup);
}

TEST(SourceRbpc, DisconnectedPairNotRestored) {
  const Graph g = topo::make_chain(3);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  const Restoration r = source_rbpc_restore(set, 0, 2, FailureMask::of_edges({1}));
  EXPECT_FALSE(r.restored());
  EXPECT_EQ(r.pc_length(), 0u);
}

TEST(SourceRbpc, SurvivingShortestPathSinglePiece) {
  // Failure elsewhere: the original route survives and is one base path.
  const Graph g = topo::make_ring(6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  const Restoration r = source_rbpc_restore(set, 0, 2, FailureMask::of_edges({4}));
  ASSERT_TRUE(r.restored());
  EXPECT_EQ(r.backup.hops(), 2u);
  EXPECT_EQ(r.pc_length(), 1u);
}

TEST(EndRoute, ReroutesFromAdjacentRouter) {
  // 6-ring, LSP 0-1-2, fail (1,2) = edge 1. R1 = router 1 reroutes to 2
  // the long way: 1-0-5-4-3-2.
  const Graph g = topo::make_ring(6);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  const FailureMask mask = FailureMask::of_edges({1});
  const Path er = end_route_path(g, spf::Metric::Hops, lsp, 1, mask);
  ASSERT_FALSE(er.empty());
  EXPECT_EQ(er.nodes(), (std::vector<NodeId>{0, 1, 0, 5, 4, 3, 2}));
  EXPECT_FALSE(er.simple());  // revisits 0 — faithful to the local scheme
}

TEST(EndRoute, FirstLinkFailureDegeneratesToSourceReroute) {
  const Graph g = topo::make_ring(6);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  const FailureMask mask = FailureMask::of_edges({0});
  const Path er = end_route_path(g, spf::Metric::Hops, lsp, 0, mask);
  ASSERT_FALSE(er.empty());
  EXPECT_EQ(er.source(), 0u);
  EXPECT_EQ(er.target(), 2u);
  EXPECT_EQ(er.hops(), 4u);  // the full detour
}

TEST(EndRoute, UnreachableDestinationGivesEmpty) {
  const Graph g = topo::make_chain(3);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  const FailureMask mask = FailureMask::of_edges({1});
  EXPECT_TRUE(end_route_path(g, spf::Metric::Hops, lsp, 1, mask).empty());
}

TEST(EndRoute, ValidatesArguments) {
  const Graph g = topo::make_ring(6);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  EXPECT_THROW(
      end_route_path(g, spf::Metric::Hops, lsp, 2, FailureMask::of_edges({0})),
      PreconditionError);  // fail_index out of range
  EXPECT_THROW(
      end_route_path(g, spf::Metric::Hops, lsp, 0, FailureMask::none()),
      PreconditionError);  // link not failed
  EXPECT_THROW(
      end_route_path(g, spf::Metric::Hops, Path{}, 0, FailureMask::none()),
      PreconditionError);
}

TEST(EdgeBypass, RoutesAroundLinkAndResumes) {
  // Grid 3x3: LSP 0-1-2 along the top row; fail (1,2) = the link between
  // nodes 1 and 2. The bypass goes 1-4-5-2; the route then resumes (and
  // ends) at 2.
  const Graph g = topo::make_grid(3, 3);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  const EdgeId failed = lsp.edge(1);
  FailureMask mask;
  mask.fail_edge(failed);
  const Path eb = edge_bypass_path(g, spf::Metric::Hops, lsp, 1, mask);
  ASSERT_FALSE(eb.empty());
  EXPECT_EQ(eb.source(), 0u);
  EXPECT_EQ(eb.target(), 2u);
  EXPECT_EQ(eb.hops(), 4u);  // 0-1, 1-4, 4-5, 5-2
  EXPECT_FALSE(eb.uses_edge(failed));
}

TEST(EdgeBypass, MidPathResumptionKeepsSuffix) {
  // 6-ring LSP 0-1-2-3; fail (1,2): bypass 1-0-5-4-3-2 then resume 2-3.
  const Graph g = topo::make_ring(6);
  const Path lsp = Path::from_nodes(g, {0, 1, 2, 3});
  FailureMask mask;
  mask.fail_edge(lsp.edge(1));
  const Path eb = edge_bypass_path(g, spf::Metric::Hops, lsp, 1, mask);
  ASSERT_FALSE(eb.empty());
  EXPECT_EQ(eb.nodes(),
            (std::vector<NodeId>{0, 1, 0, 5, 4, 3, 2, 3}));
  // Dilation vs end-route is possible: the bypass walks past 3 to 2 and
  // back — exactly the inefficiency Figure 10 quantifies.
  const Path er = end_route_path(g, spf::Metric::Hops, lsp, 1, mask);
  EXPECT_LE(er.hops(), eb.hops());
}

TEST(EdgeBypass, BridgeCannotBeBypassed) {
  const Graph g = topo::make_chain(3);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  FailureMask mask;
  mask.fail_edge(lsp.edge(1));
  EXPECT_TRUE(edge_bypass_path(g, spf::Metric::Hops, lsp, 1, mask).empty());
}

TEST(EdgeBypass, WeightedBypassMinimizesCost) {
  // Triangle with heavy detour: 0-1 (1), 1-2 (1), 0-2 (10); LSP 0-1, fail
  // (0,1): bypass 0-2-1 costs 11 but is the only option.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 2, 10);
  const Graph g = b.build();
  const Path lsp = Path::from_nodes(g, {0, 1});
  FailureMask mask;
  mask.fail_edge(lsp.edge(0));
  const Path eb = edge_bypass_path(g, spf::Metric::Weighted, lsp, 0, mask);
  ASSERT_FALSE(eb.empty());
  EXPECT_EQ(eb.cost(g), 11);
}

TEST(LocalSchemes, AgreeWhenFailureIsLastLink) {
  // When the failed link is the last one, end-route and edge-bypass
  // coincide (both route R1 -> destination).
  const Graph g = topo::make_ring(6);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  FailureMask mask;
  mask.fail_edge(lsp.edge(1));
  const Path er = end_route_path(g, spf::Metric::Hops, lsp, 1, mask);
  const Path eb = edge_bypass_path(g, spf::Metric::Hops, lsp, 1, mask);
  EXPECT_EQ(er.nodes(), eb.nodes());
}

TEST(LocalSchemes, RandomGraphInvariants) {
  Rng rng(51);
  const Graph g = topo::make_random_connected(40, 100, rng, 8);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const Path lsp = oracle.canonical_path(s, t);
    if (lsp.hops() < 1) continue;
    const std::size_t idx = rng.below(lsp.hops());
    FailureMask mask;
    mask.fail_edge(lsp.edge(idx));

    const Path best = spf::shortest_path(g, s, t, mask);
    const Path er = end_route_path(g, spf::Metric::Weighted, lsp, idx, mask);
    const Path eb = edge_bypass_path(g, spf::Metric::Weighted, lsp, idx, mask);
    if (best.empty()) {
      EXPECT_TRUE(er.empty());
      continue;
    }
    // Both local routes are valid s->t routes avoiding the failure and cost
    // at least the optimum.
    for (const Path* p : {&er, &eb}) {
      if (p->empty()) continue;  // bypass may not exist
      EXPECT_EQ(p->source(), s);
      EXPECT_EQ(p->target(), t);
      EXPECT_TRUE(p->alive(g, mask));
      EXPECT_GE(p->cost(g), best.cost(g));
    }
    // End-route from R1 is optimal from R1 onward, so it never exceeds
    // edge-bypass.
    if (!er.empty() && !eb.empty()) {
      EXPECT_LE(er.cost(g), eb.cost(g));
    }
  }
}

}  // namespace
}  // namespace rbpc::core
