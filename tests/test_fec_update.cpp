// Tests for core/fec_update (precomputed per-link FEC update plans) and
// their integration into RbpcController.
#include <gtest/gtest.h>

#include "core/base_set.hpp"
#include "core/controller.hpp"
#include "core/fec_update.hpp"
#include "mpls/ldp.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

TEST(FecUpdatePlan, CoversExactlyTheAffectedPairs) {
  const Graph g = topo::make_ring(6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet base(oracle);
  const FecUpdatePlan plan = compute_fec_update_plan(base, 0);  // link (0,1)
  EXPECT_EQ(plan.link, 0u);
  EXPECT_FALSE(plan.updates.empty());
  for (const FecUpdate& u : plan.updates) {
    const auto primary = base.base_path(u.src, u.dst);
    EXPECT_TRUE(primary.uses_edge(0)) << u.src << "->" << u.dst;
    // The replacement chain restores the pair around the failure.
    ASSERT_FALSE(u.chain.empty());
    const auto joined = u.chain.joined();
    EXPECT_EQ(joined.source(), u.src);
    EXPECT_EQ(joined.target(), u.dst);
    EXPECT_FALSE(joined.uses_edge(0));
  }
}

TEST(FecUpdatePlan, DisconnectedPairsGetEmptyChains) {
  const Graph g = topo::make_chain(4);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet base(oracle);
  const FecUpdatePlan plan = compute_fec_update_plan(base, 1);  // bridge
  EXPECT_FALSE(plan.updates.empty());
  for (const FecUpdate& u : plan.updates) {
    EXPECT_TRUE(u.chain.empty());
  }
}

TEST(FecUpdatePlan, AllPlansCoverEveryLink) {
  const Graph g = topo::make_ring(5);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet base(oracle);
  const auto plans = compute_all_fec_update_plans(base);
  ASSERT_EQ(plans.size(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(plans[e].link, e);
    // On a ring every link carries some base LSP.
    EXPECT_FALSE(plans[e].updates.empty());
  }
}

TEST(FecUpdatePlan, MatchesOnlineRestorationRoutes) {
  Rng rng(97);
  const Graph g = topo::make_random_connected(18, 40, rng, 6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet base(oracle);
  for (EdgeId e = 0; e < 10; ++e) {
    const FecUpdatePlan plan = compute_fec_update_plan(base, e);
    FailureMask mask;
    mask.fail_edge(e);
    for (const FecUpdate& u : plan.updates) {
      const auto online = spf::shortest_path(
          g, u.src, u.dst, mask, spf::SpfOptions{.padded = true});
      if (online.empty()) {
        EXPECT_TRUE(u.chain.empty());
      } else {
        ASSERT_FALSE(u.chain.empty());
        EXPECT_EQ(u.chain.joined(), online);
      }
    }
  }
}

TEST(ControllerPlans, PlannedFailoverMatchesOnlineFailover) {
  const Graph g = topo::make_ring(8);

  RbpcController online(g, spf::Metric::Hops);
  online.provision();
  RbpcController planned(g, spf::Metric::Hops);
  planned.provision();
  planned.precompute_plan(2);
  EXPECT_EQ(planned.planned_links(), 1u);

  online.fail_link(2);
  planned.fail_link(2);
  EXPECT_EQ(online.pairs_under_restoration(),
            planned.pairs_under_restoration());
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const auto a = online.send(s, t);
      const auto b = planned.send(s, t);
      EXPECT_EQ(a.delivered(), b.delivered());
      if (a.delivered()) {
        EXPECT_EQ(a.trace, b.trace);
      }
    }
  }
  planned.recover_link(2);
  EXPECT_EQ(planned.pairs_under_restoration(), 0u);
}

TEST(ControllerPlans, PlanIgnoredUnderMultipleFailures) {
  const Graph g = topo::make_ring(8);
  RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();
  ctl.precompute_plan(2);
  ctl.fail_link(5);  // unplanned failure first
  ctl.fail_link(2);  // plan must NOT be applied verbatim now
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const auto r = ctl.send(s, t);
      const auto want =
          spf::distance(g, s, t, ctl.failures(),
                        spf::SpfOptions{.metric = spf::Metric::Hops});
      if (want == graph::kUnreachable) {
        EXPECT_FALSE(r.delivered());
      } else {
        ASSERT_TRUE(r.delivered()) << s << "->" << t;
        EXPECT_EQ(static_cast<graph::Weight>(r.hops), want);
      }
    }
  }
}

// --- LDP latency model --------------------------------------------------------

TEST(Ldp, SetupTimeScalesWithHops) {
  const Graph g = topo::make_chain(5);
  const auto p2 = graph::Path::from_nodes(g, {0, 1, 2});
  const auto p4 = graph::Path::from_nodes(g, {0, 1, 2, 3, 4});
  mpls::LdpParams params;
  EXPECT_LT(mpls::lsp_setup_time(p2, params), mpls::lsp_setup_time(p4, params));
  // 2 hops: request 2*(1+0.2+0.1) + mapping 2*(1+0.2) = 2.6 + 2.4 = 5.0.
  EXPECT_DOUBLE_EQ(mpls::lsp_setup_time(p2, params), 5.0);
}

TEST(Ldp, ResignalAddsNotificationAndProcessing) {
  const Graph g = topo::make_chain(3);
  const auto p = graph::Path::from_nodes(g, {0, 1, 2});
  mpls::LdpParams params;
  const double setup = mpls::lsp_setup_time(p, params);
  EXPECT_DOUBLE_EQ(mpls::resignal_restoration_time(10.0, p, params),
                   10.0 + params.process_delay + setup);
}

TEST(Ldp, Validation) {
  mpls::LdpParams params;
  EXPECT_THROW(mpls::lsp_setup_time(graph::Path{}, params), PreconditionError);
}

}  // namespace
}  // namespace rbpc::core
