// Tests for core/baselines: the restoration schemes RBPC is compared with.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/base_set.hpp"
#include "core/restoration.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

TEST(DisjointBackup, SwitchesToBackupOnPrimaryFailure) {
  const Graph g = topo::make_ring(6);
  DisjointBackupScheme scheme(g, spf::Metric::Hops);
  const auto before = scheme.restore(0, 3, FailureMask::none());
  ASSERT_TRUE(before.restored());
  FailureMask mask;
  mask.fail_edge(before.route.edge(0));
  const auto after = scheme.restore(0, 3, mask);
  ASSERT_TRUE(after.restored());
  EXPECT_TRUE(after.route.alive(g, mask));
  EXPECT_NE(after.route, before.route);
}

TEST(DisjointBackup, QualityCompromiseVsRbpc) {
  // The backup is disjoint from the primary, so when a link far from the
  // optimal detour fails, the disjoint scheme can be much worse than the
  // true new shortest path that RBPC restores.
  // Build: s=0, t=1 with direct edge (1), a 2-hop detour (cost 4), and a
  // long disjoint detour is not needed — on failure of a NON-primary link
  // the schemes agree, on primary failure disjoint switches to its single
  // backup while RBPC finds the best.
  graph::GraphBuilder b(5);
  const EdgeId direct = b.add_edge(0, 1, 2);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 1, 1);   // cheap detour, cost 2
  b.add_edge(0, 3, 5);
  b.add_edge(3, 4, 5);
  b.add_edge(4, 1, 5);   // expensive detour, cost 15
  const Graph g = b.build();

  DisjointBackupScheme scheme(g, spf::Metric::Weighted);
  FailureMask mask;
  mask.fail_edge(direct);

  const auto outcome = scheme.restore(0, 1, mask);
  ASSERT_TRUE(outcome.restored());

  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet base(oracle);
  const Restoration rbpc = source_rbpc_restore(base, 0, 1, mask);
  ASSERT_TRUE(rbpc.restored());
  // RBPC restores the true min-cost route; the baseline is no better.
  EXPECT_LE(rbpc.backup.cost(g), outcome.route.cost(g));
}

TEST(DisjointBackup, NoPairOnBridge) {
  const Graph g = topo::make_chain(4);
  DisjointBackupScheme scheme(g, spf::Metric::Hops);
  FailureMask mask;
  mask.fail_edge(1);
  EXPECT_FALSE(scheme.restore(0, 3, mask).restored());
  // Unfailed: primary works.
  EXPECT_TRUE(scheme.restore(0, 3, FailureMask::none()).restored());
}

TEST(DisjointBackup, NodeDisjointSurvivesRouterFailure) {
  const Graph g = topo::make_ring(7);
  DisjointBackupScheme scheme(g, spf::Metric::Hops, /*node_disjoint=*/true);
  const auto before = scheme.restore(0, 3, FailureMask::none());
  ASSERT_TRUE(before.restored());
  // Fail an interior router of the active route.
  FailureMask mask;
  mask.fail_node(before.route.node(1));
  const auto after = scheme.restore(0, 3, mask);
  ASSERT_TRUE(after.restored());
  EXPECT_TRUE(after.route.alive(g, mask));
}

TEST(DisjointBackup, CostAccounting) {
  const Graph g = topo::make_ring(6);
  DisjointBackupScheme scheme(g, spf::Metric::Hops);
  EXPECT_EQ(scheme.cost().lsps, 0u);
  scheme.restore(0, 3, FailureMask::none());
  EXPECT_EQ(scheme.cost().lsps, 2u);  // primary + backup
  scheme.restore(0, 3, FailureMask::none());
  EXPECT_EQ(scheme.cost().lsps, 2u);  // cached, not re-provisioned
  scheme.restore(1, 4, FailureMask::none());
  EXPECT_EQ(scheme.cost().lsps, 4u);
  EXPECT_GT(scheme.cost().ilm_entries, 0u);
}

TEST(KspBackup, UsesCheapestSurvivor) {
  const Graph g = topo::make_grid(3, 3);
  KspBackupScheme scheme(g, spf::Metric::Hops, 4);
  const auto before = scheme.restore(0, 8, FailureMask::none());
  ASSERT_TRUE(before.restored());
  EXPECT_EQ(before.route.hops(), 4u);
  FailureMask mask;
  mask.fail_edge(before.route.edge(0));
  const auto after = scheme.restore(0, 8, mask);
  ASSERT_TRUE(after.restored());
  EXPECT_TRUE(after.route.alive(g, mask));
  EXPECT_EQ(after.route.hops(), 4u);  // another of the 6 shortest survives
}

TEST(KspBackup, FailsWhenAllKPathsDie) {
  // 4-ring: only 2 loopless 0->2 routes; failing one link of each kills a
  // k=2 scheme even though connectivity may survive... on a ring failing
  // one link of each route disconnects 0 from 2 anyway, so use k=1.
  const Graph g = topo::make_grid(3, 3);
  KspBackupScheme scheme(g, spf::Metric::Hops, 1);
  const auto before = scheme.restore(0, 8, FailureMask::none());
  FailureMask mask;
  mask.fail_edge(before.route.edge(0));
  // The single provisioned path is dead; the scheme has nothing else, even
  // though the grid is still connected.
  EXPECT_FALSE(scheme.restore(0, 8, mask).restored());
  EXPECT_FALSE(spf::shortest_path(g, 0, 8, mask).empty());
}

TEST(KspBackup, CostScalesWithK) {
  const Graph g = topo::make_grid(3, 3);
  KspBackupScheme k2(g, spf::Metric::Hops, 2);
  KspBackupScheme k5(g, spf::Metric::Hops, 5);
  k2.restore(0, 8, FailureMask::none());
  k5.restore(0, 8, FailureMask::none());
  EXPECT_EQ(k2.cost().lsps, 2u);
  EXPECT_EQ(k5.cost().lsps, 5u);
  EXPECT_GT(k5.cost().ilm_entries, k2.cost().ilm_entries);
}

TEST(PerFailureBackup, OptimalForProvisionedScenarios) {
  const Graph g = topo::make_ring(8);
  PerFailureBackupScheme scheme(g, spf::Metric::Hops);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  const Path primary = oracle.canonical_path(0, 3);
  for (EdgeId e : primary.edges()) {
    FailureMask mask;
    mask.fail_edge(e);
    const auto outcome = scheme.restore(0, 3, mask);
    ASSERT_TRUE(outcome.restored());
    EXPECT_EQ(static_cast<graph::Weight>(outcome.route.hops()),
              spf::distance(g, 0, 3, mask,
                            spf::SpfOptions{.metric = spf::Metric::Hops}));
  }
}

TEST(PerFailureBackup, BlindToUnprovisionedScenarios) {
  const Graph g = topo::make_ring(8);
  PerFailureBackupScheme scheme(g, spf::Metric::Hops);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  const Path primary = oracle.canonical_path(0, 3);
  // Two failures on the primary: not provisioned, not restored (although a
  // route exists) — the paper's argument for RBPC's multi-failure story.
  FailureMask mask;
  mask.fail_edge(primary.edge(0));
  mask.fail_edge(primary.edge(1));
  EXPECT_FALSE(scheme.restore(0, 3, mask).restored());
  EXPECT_FALSE(spf::shortest_path(g, 0, 3, mask).empty());
}

TEST(PerFailureBackup, PrimarySurvivesUnrelatedFailure) {
  const Graph g = topo::make_ring(8);
  PerFailureBackupScheme scheme(g, spf::Metric::Hops);
  FailureMask mask;
  mask.fail_edge(5);  // not on the 0->3 canonical path
  const auto outcome = scheme.restore(0, 3, mask);
  ASSERT_TRUE(outcome.restored());
  EXPECT_EQ(outcome.route.hops(), 3u);
}

TEST(PerFailureBackup, StateExplosion) {
  // The per-failure scheme provisions one LSP per (pair, link); its state
  // grows with path length while the disjoint scheme stays at 2.
  Rng rng(83);
  const Graph g = topo::make_isp_like(rng);
  PerFailureBackupScheme per_failure(g, spf::Metric::Weighted);
  DisjointBackupScheme disjoint(g, spf::Metric::Weighted);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  std::size_t long_pairs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    if (oracle.canonical_path(s, t).hops() < 3) continue;
    ++long_pairs;
    per_failure.restore(s, t, FailureMask::none());
    disjoint.restore(s, t, FailureMask::none());
  }
  ASSERT_GT(long_pairs, 0u);
  EXPECT_GT(per_failure.cost().lsps, disjoint.cost().lsps);
  EXPECT_GT(per_failure.cost().ilm_entries, disjoint.cost().ilm_entries);
}

TEST(Baselines, Validation) {
  const Graph g = topo::make_ring(4);
  DisjointBackupScheme d(g, spf::Metric::Hops);
  EXPECT_THROW(d.restore(1, 1, FailureMask::none()), PreconditionError);
  EXPECT_THROW(KspBackupScheme(g, spf::Metric::Hops, 0), PreconditionError);
  KspBackupScheme ksp(g, spf::Metric::Hops, 2);
  EXPECT_THROW(ksp.restore(2, 2, FailureMask::none()), PreconditionError);
  PerFailureBackupScheme pf(g, spf::Metric::Hops);
  EXPECT_THROW(pf.restore(3, 3, FailureMask::none()), PreconditionError);
}

}  // namespace
}  // namespace rbpc::core
