// Tests for core/experiment: the Table-2 / Table-3 / Figure-10 engines on
// small, analyzable topologies.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::Graph;

TEST(Table2Engine, RingSingleLinkFailures) {
  // On a ring every single-link restoration is the complementary arc and
  // needs exactly 2 base paths (Theorem 1 with k = 1, and the ring detour
  // is never a single shortest path for an odd ring).
  const Graph g = topo::make_ring(9);
  Table2Config cfg;
  cfg.samples = 30;
  cfg.seed = 5;
  cfg.metric = spf::Metric::Hops;
  const Table2Row row = run_table2(g, FailureClass::OneLink, cfg);

  EXPECT_GT(row.cases, 0u);
  EXPECT_EQ(row.unrestorable, 0u);  // a ring survives any single failure
  EXPECT_EQ(row.restored, row.cases);
  EXPECT_DOUBLE_EQ(row.avg_pc_length, 2.0);
  EXPECT_LE(row.max_pc_length, 2u);
  // Odd ring: unique shortest paths => no equal-cost backups.
  EXPECT_DOUBLE_EQ(row.redundancy, 0.0);
  EXPECT_EQ(row.max_redundancy, 1u);
  // Backup paths are longer than originals.
  EXPECT_GT(row.length_stretch, 1.0);
  // Basic LSP entries are shared across cases, so RBPC needs less ILM than
  // explicit backups on average.
  EXPECT_GT(row.avg_ilm_stretch, 0.0);
  EXPECT_LE(row.min_ilm_stretch, row.avg_ilm_stretch);
}

TEST(Table2Engine, EvenRingHasRedundantPairs) {
  // On an even ring, antipodal pairs have 2 equal shortest paths.
  const Graph g = topo::make_ring(8);
  Table2Config cfg;
  cfg.samples = 40;
  cfg.seed = 7;
  cfg.metric = spf::Metric::Hops;
  const Table2Row row = run_table2(g, FailureClass::OneLink, cfg);
  EXPECT_EQ(row.max_redundancy, 2u);
  EXPECT_GT(row.redundancy, 0.0);  // some backups are equal-cost
}

TEST(Table2Engine, BridgeFailuresAreUnrestorable) {
  const Graph g = topo::make_chain(6);
  Table2Config cfg;
  cfg.samples = 15;
  cfg.seed = 11;
  cfg.metric = spf::Metric::Hops;
  const Table2Row row = run_table2(g, FailureClass::OneLink, cfg);
  EXPECT_EQ(row.restored, 0u);
  EXPECT_EQ(row.unrestorable, row.cases);
  EXPECT_DOUBLE_EQ(row.avg_pc_length, 0.0);
}

TEST(Table2Engine, TwoLinkClassStaysWithinTheorem1Bound) {
  const Graph g = topo::make_ring(10);
  Table2Config cfg;
  cfg.samples = 25;
  cfg.seed = 13;
  cfg.metric = spf::Metric::Hops;
  const Table2Row row = run_table2(g, FailureClass::TwoLinks, cfg);
  // Both failed links are on the original LSP; a ring with 2 failed links
  // on one arc either disconnects nothing extra (arc still bypassable) or
  // disconnects the pair. PC length stays <= 3 (Theorem 1, k = 2).
  EXPECT_LE(row.max_pc_length, 3u);
}

TEST(Table2Engine, RouterClassesRun) {
  Rng rng(17);
  const Graph g = topo::make_random_connected(30, 80, rng, 1);
  Table2Config cfg;
  cfg.samples = 20;
  cfg.seed = 19;
  cfg.metric = spf::Metric::Hops;
  const Table2Row one = run_table2(g, FailureClass::OneRouter, cfg);
  const Table2Row two = run_table2(g, FailureClass::TwoRouters, cfg);
  EXPECT_GT(one.cases + two.cases, 0u);
  if (one.restored > 0) {
    EXPECT_GE(one.avg_pc_length, 1.0);
    EXPECT_GE(one.length_stretch, 1.0);
  }
}

TEST(Table2Engine, DeterministicPerSeed) {
  const Graph g = topo::make_ring(12);
  Table2Config cfg;
  cfg.samples = 10;
  cfg.seed = 23;
  cfg.metric = spf::Metric::Hops;
  const Table2Row a = run_table2(g, FailureClass::OneLink, cfg);
  const Table2Row b = run_table2(g, FailureClass::OneLink, cfg);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_DOUBLE_EQ(a.avg_pc_length, b.avg_pc_length);
  EXPECT_DOUBLE_EQ(a.avg_ilm_stretch, b.avg_ilm_stretch);
  EXPECT_DOUBLE_EQ(a.length_stretch, b.length_stretch);
}

TEST(Table2Engine, WeightedIspSmokeRun) {
  Rng rng(29);
  const Graph g = topo::make_isp_like(rng);
  Table2Config cfg;
  cfg.samples = 15;  // keep the test fast; the bench runs 200
  cfg.seed = 31;
  cfg.metric = spf::Metric::Weighted;
  const Table2Row row = run_table2(g, FailureClass::OneLink, cfg);
  EXPECT_GT(row.restored, 0u);
  // The paper's headline numbers: PC length around 2, modest stretch.
  EXPECT_GE(row.avg_pc_length, 1.0);
  EXPECT_LE(row.avg_pc_length, 3.0);
  EXPECT_GE(row.length_stretch, 1.0);
  EXPECT_LT(row.avg_ilm_stretch, 1.0);  // RBPC saves ILM space vs backups
}

TEST(Table2Engine, BaseSetKindsOrderPcLength) {
  // Richer base sets decompose into no more pieces: expanded <= canonical,
  // all-pairs <= canonical.
  Rng rng(43);
  const Graph g = topo::make_random_connected(40, 100, rng, 9);
  Table2Config cfg;
  cfg.samples = 25;
  cfg.seed = 47;
  cfg.metric = spf::Metric::Weighted;

  cfg.base_set = BaseSetKind::Canonical;
  const Table2Row canonical = run_table2(g, FailureClass::OneLink, cfg);
  cfg.base_set = BaseSetKind::AllPairs;
  const Table2Row all_pairs = run_table2(g, FailureClass::OneLink, cfg);
  cfg.base_set = BaseSetKind::Expanded;
  const Table2Row expanded = run_table2(g, FailureClass::OneLink, cfg);

  ASSERT_GT(canonical.restored, 0u);
  EXPECT_EQ(canonical.restored, all_pairs.restored);
  EXPECT_EQ(canonical.restored, expanded.restored);
  EXPECT_LE(all_pairs.avg_pc_length, canonical.avg_pc_length);
  EXPECT_LE(expanded.avg_pc_length, canonical.avg_pc_length);
  // Corollary 4 with k = 1: two expanded pieces always suffice.
  EXPECT_LE(expanded.max_pc_length, 2u);
  // The restoration route (and thus length stretch) is scheme-independent.
  EXPECT_DOUBLE_EQ(canonical.length_stretch, all_pairs.length_stretch);
}

// --- Table 3 --------------------------------------------------------------------

TEST(Table3Engine, RingBypassesAreComplementaryArcs) {
  const Graph g = topo::make_ring(7);
  Table3Config cfg;
  cfg.metric = spf::Metric::Hops;
  const Table3Result res = run_table3(g, cfg);
  EXPECT_EQ(res.evaluated, 7u);
  EXPECT_EQ(res.bridges, 0u);
  EXPECT_EQ(res.hopcount.count(6), 7u);  // every bypass is the 6-hop arc
}

TEST(Table3Engine, BridgesAreCountedSeparately) {
  // Two triangles joined by a bridge.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  b.add_edge(2, 3);  // bridge
  const Graph g = b.build();
  Table3Config cfg;
  cfg.metric = spf::Metric::Hops;
  const Table3Result res = run_table3(g, cfg);
  EXPECT_EQ(res.bridges, 1u);
  EXPECT_EQ(res.hopcount.total(), 6u);
  EXPECT_DOUBLE_EQ(res.hopcount.fraction(2), 1.0);  // triangle edges
}

TEST(Table3Engine, SamplingCapsWork) {
  Rng rng(37);
  const Graph g = topo::make_random_connected(40, 100, rng, 1);
  Table3Config cfg;
  cfg.max_links = 25;
  cfg.seed = 41;
  cfg.metric = spf::Metric::Hops;
  const Table3Result res = run_table3(g, cfg);
  EXPECT_EQ(res.evaluated, 25u);
  EXPECT_EQ(res.hopcount.total() + res.bridges, 25u);
}

// --- Figure 10 -------------------------------------------------------------------

TEST(Fig10Engine, StretchesAreAtLeastOneInCost) {
  Rng rng(43);
  const Graph g = topo::make_isp_like(rng);
  Fig10Config cfg;
  cfg.samples = 20;
  cfg.seed = 47;
  const Fig10Result res = run_fig10(g, cfg);
  EXPECT_GT(res.cases, 0u);
  EXPECT_EQ(res.end_route_cost.total(), res.cases);
  EXPECT_EQ(res.edge_bypass_cost.total(), res.cases);
  // Cost stretch is >= 1 by optimality of the source-routed baseline: the
  // sub-1.0 bins must be empty for the cost histograms.
  for (std::size_t b = 0; b < res.end_route_cost.num_bins(); ++b) {
    if (res.end_route_cost.bin_hi(b) <= 1.0) {
      EXPECT_EQ(res.end_route_cost.bin_count(b), 0u);
      EXPECT_EQ(res.edge_bypass_cost.bin_count(b), 0u);
    }
  }
}

TEST(Fig10Engine, MajorityOfLocalRestorationsAreNearOptimal) {
  // The paper's observation: the vast majority of local restorations cost
  // about as much as the optimal restoration.
  Rng rng(53);
  const Graph g = topo::make_isp_like(rng);
  Fig10Config cfg;
  cfg.samples = 40;
  cfg.seed = 59;
  const Fig10Result res = run_fig10(g, cfg);
  ASSERT_GT(res.cases, 0u);
  std::uint64_t er_near = 0;
  for (std::size_t b = 0; b < res.end_route_cost.num_bins(); ++b) {
    if (res.end_route_cost.bin_hi(b) <= 1.15) {
      er_near += res.end_route_cost.bin_count(b);
    }
  }
  EXPECT_GT(static_cast<double>(er_near) / static_cast<double>(res.cases), 0.5);
}

TEST(Fig10Engine, HopcountStretchCanDipBelowOne) {
  // The paper notes hopcount stretch < 1 occurs when the min-cost path has
  // more hops than the local restoration. Construct such a case: weighted
  // graph where the cheap path is long.
  graph::GraphBuilder b(5);
  b.add_edge(0, 1, 10);  // LSP edge, will fail
  b.add_edge(0, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 4, 1);
  b.add_edge(4, 1, 1);   // cheap 4-hop detour, cost 4
  b.add_edge(0, 4, 30);  // expensive 2-hop detour via 4, cost 31
  const Graph g = b.build();
  // min-cost restoration 0->1 after failing (0,1): 0-2-3-4-1 (cost 4,
  // 4 hops). End-route = same. So this instance alone shows stretch 1.0;
  // the histogram mechanics for <1 bins are already covered above. Just
  // verify the engine handles tiny graphs.
  Fig10Config cfg;
  cfg.samples = 5;
  cfg.seed = 61;
  const Fig10Result res = run_fig10(g, cfg);
  EXPECT_GE(res.cases + res.skipped, 1u);
}

TEST(Fig10Engine, DeterministicPerSeed) {
  Rng rng(67);
  const Graph g = topo::make_isp_like(rng);
  Fig10Config cfg;
  cfg.samples = 10;
  cfg.seed = 71;
  const Fig10Result a = run_fig10(g, cfg);
  const Fig10Result b = run_fig10(g, cfg);
  EXPECT_EQ(a.cases, b.cases);
  for (std::size_t i = 0; i < a.end_route_cost.num_bins(); ++i) {
    EXPECT_EQ(a.end_route_cost.bin_count(i), b.end_route_cost.bin_count(i));
    EXPECT_EQ(a.edge_bypass_hops.bin_count(i), b.edge_bypass_hops.bin_count(i));
  }
}

}  // namespace
}  // namespace rbpc::core
