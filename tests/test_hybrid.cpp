// Tests for core/hybrid: the local-patch-then-source-reoptimize timeline.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "lsdb/event_queue.hpp"
#include "mpls/network.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

TEST(Hybrid, LocalPatchPrecedesSourcePatch) {
  // 8-ring, LSP 0-1-2-3, fail (2,3): the source (router 0) is two flood
  // hops away from the failure, so the local patch strictly precedes the
  // source patch.
  const Graph g = topo::make_ring(8);
  const Path lsp = Path::from_nodes(g, {0, 1, 2, 3});
  lsdb::FloodParams flood{.link_delay = 1.0, .process_delay = 0.0,
                          .detect_delay = 0.1};
  const HybridTimeline tl =
      hybrid_timeline(g, spf::Metric::Hops, lsp, 2, 5.0, flood);
  ASSERT_TRUE(tl.restored);
  EXPECT_DOUBLE_EQ(tl.fail_time, 5.0);
  EXPECT_DOUBLE_EQ(tl.local_patch_time, 5.1);
  EXPECT_GT(tl.source_patch_time, tl.local_patch_time);
  // Flood: detect at 5.1 (routers 2, 3), then 2 hops to router 0.
  EXPECT_DOUBLE_EQ(tl.source_patch_time, 5.1 + 2.0);
}

TEST(Hybrid, InterimStretchAtLeastOne) {
  Rng rng(73);
  const Graph g = topo::make_random_connected(30, 70, rng, 6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  int evaluated = 0;
  for (int trial = 0; trial < 30 && evaluated < 15; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const Path lsp = oracle.canonical_path(s, t);
    if (lsp.hops() < 1) continue;
    const std::size_t idx = rng.below(lsp.hops());
    const HybridTimeline tl = hybrid_timeline(g, spf::Metric::Weighted, lsp,
                                              idx, 0.0, lsdb::FloodParams{});
    if (!tl.restored) continue;
    ++evaluated;
    EXPECT_GE(tl.interim_stretch, 1.0 - 1e-12);
    EXPECT_EQ(tl.final_route.source(), s);
    EXPECT_EQ(tl.final_route.target(), t);
  }
  EXPECT_GT(evaluated, 0);
}

TEST(Hybrid, EndRouteVariant) {
  const Graph g = topo::make_ring(8);
  const Path lsp = Path::from_nodes(g, {0, 1, 2, 3});
  const HybridTimeline tl = hybrid_timeline(
      g, spf::Metric::Hops, lsp, 2, 0.0, lsdb::FloodParams{},
      /*use_edge_bypass=*/false);
  ASSERT_TRUE(tl.restored);
  // End-route local path: prefix 0-1-2 then 2->3 the long way.
  EXPECT_EQ(tl.local_route.source(), 0u);
  EXPECT_EQ(tl.local_route.target(), 3u);
  EXPECT_GE(tl.local_route.hops(), tl.final_route.hops());
}

TEST(Hybrid, UnrestorableFailure) {
  const Graph g = topo::make_chain(4);
  const Path lsp = Path::from_nodes(g, {0, 1, 2, 3});
  const HybridTimeline tl =
      hybrid_timeline(g, spf::Metric::Hops, lsp, 1, 0.0, lsdb::FloodParams{});
  EXPECT_FALSE(tl.restored);
  EXPECT_TRUE(tl.final_route.empty());
}

// Event-driven packet-loss window: periodic traffic over the MPLS tables
// while the failure, the local splice, and the source FEC rewrite fire at
// their respective times. The local patch shrinks the loss window from the
// whole flood delay to just the detection delay.
TEST(Hybrid, LossWindowShrinksWithLocalPatch) {
  const Graph g = topo::make_ring(6);
  const Path lsp_path = Path::from_nodes(g, {0, 1, 2});       // 0 -> 2 via 1
  const Path detour = Path::from_nodes(g, {1, 0, 5, 4, 3, 2});  // 1 -> 2 long way
  const Path src_detour = Path::from_nodes(g, {0, 5, 4, 3, 2});

  // Sends are offset from the event instants so the timeline is
  // unambiguous: sends at 0.25, 0.75, 1.25, ...
  const double t_fail = 5.0;
  const double t_detect = 5.8;   // adjacent router splices
  const double t_source = 9.0;   // flood reaches the source
  const double period = 0.5;
  const double first_send = 0.25;

  auto run = [&](bool with_local_patch) {
    mpls::Network net(g);
    const auto lsp = net.provision_lsp(lsp_path);
    const auto bypass = net.provision_lsp(detour);
    const auto source_route = net.provision_lsp(src_detour);
    net.set_fec_chain(0, 2, {lsp});

    lsdb::EventQueue q;
    int delivered = 0;
    int dropped = 0;
    for (double t = first_send; t <= 15.0; t += period) {
      q.schedule_at(t, [&] {
        if (net.send(0, 2).delivered()) {
          ++delivered;
        } else {
          ++dropped;
        }
      });
    }
    q.schedule_at(t_fail, [&] {
      net.set_failures(graph::FailureMask::of_edges({lsp_path.edge(1)}));
    });
    if (with_local_patch) {
      q.schedule_at(t_detect, [&] {
        net.splice_ilm(lsp, 1, {net.lsp(bypass).ingress_label()});
      });
    }
    q.schedule_at(t_source, [&] {
      net.set_fec_chain(0, 2, {source_route});
    });
    q.run_all();
    return std::pair<int, int>{delivered, dropped};
  };

  const auto [d_no_patch, drop_no_patch] = run(false);
  const auto [d_patch, drop_patch] = run(true);
  // Without the local patch, every packet in (5.0, 9.0) is lost:
  // 5.25, 5.75, ..., 8.75 = 8 sends.
  EXPECT_EQ(drop_no_patch, 8);
  // With it, only the packets before detection (5.25, 5.75) are lost.
  EXPECT_EQ(drop_patch, 2);
  EXPECT_EQ(d_patch, d_no_patch + 6);
}

TEST(Hybrid, ValidatesFailIndex) {
  const Graph g = topo::make_ring(6);
  const Path lsp = Path::from_nodes(g, {0, 1, 2});
  EXPECT_THROW(hybrid_timeline(g, spf::Metric::Hops, lsp, 2, 0.0,
                               lsdb::FloodParams{}),
               PreconditionError);
}

}  // namespace
}  // namespace rbpc::core
