// Chaos layer tests: fault-injected control plane, graceful degradation,
// and convergence drills (src/chaos).
//
// The load-bearing suites are the drill matrices: seeded chaos drills over
// the shared 54-topology corpus and over a seeds × loss × fault-shape
// matrix, asserting that during churn nothing crashes, every forwarding
// loop is TTL-guarded (never delivered), and nothing is delivered across
// truth-dead links — and that after quiescence the view has converged to
// the truth and the classic exact invariant (delivered iff connected, at
// min cost) holds again.
//
// This file is also built standalone (rbpc_add_test) so CI can run it
// under TSan and ASan+UBSan directly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/chaos_drill.hpp"
#include "chaos/chaos_flood.hpp"
#include "chaos/fault_plan.hpp"
#include "core/controller.hpp"
#include "core/merged_controller.hpp"
#include "corpus.hpp"
#include "graph/graph.hpp"
#include "spf/metric.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::chaos {
namespace {

using core::DrillActions;
using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

DrillActions chaos_actions(core::RbpcController& ctl) {
  DrillActions a;
  a.fail_link = [&ctl](EdgeId e) { ctl.fail_link(e); };
  a.recover_link = [&ctl](EdgeId e) { ctl.recover_link(e); };
  a.send = [&ctl](NodeId s, NodeId t) { return ctl.send(s, t); };
  a.failures = [&ctl]() -> const FailureMask& { return ctl.failures(); };
  a.set_data_failures = [&ctl](const FailureMask& m) {
    ctl.network().set_failures(m);
  };
  return a;
}

DrillActions chaos_actions(core::MergedRbpcController& ctl) {
  DrillActions a;
  a.fail_link = [&ctl](EdgeId e) { ctl.fail_link(e); };
  a.recover_link = [&ctl](EdgeId e) { ctl.recover_link(e); };
  a.send = [&ctl](NodeId s, NodeId t) { return ctl.send(s, t); };
  a.failures = [&ctl]() -> const FailureMask& { return ctl.failures(); };
  a.set_data_failures = [&ctl](const FailureMask& m) {
    ctl.network().set_failures(m);
  };
  return a;
}

void expect_clean(const ChaosReport& r, const std::string& context) {
  EXPECT_TRUE(r.during_violations.empty())
      << context << ": " << r.during_violations.size()
      << " during-churn violations; first: " << r.during_violations.front();
  EXPECT_TRUE(r.post_violations.empty())
      << context << ": " << r.post_violations.size()
      << " post-quiescence violations; first: " << r.post_violations.front();
  EXPECT_GT(r.transitions, 0u) << context;
}

template <typename Controller>
ChaosReport run_on(const Graph& g, const ChaosDrillConfig& cfg,
                   std::uint64_t seed, bool degrade = true) {
  Controller ctl(g, spf::Metric::Weighted);
  ctl.set_graceful_degradation(degrade);
  ctl.provision();
  const DrillActions a = chaos_actions(ctl);
  Rng rng(seed);
  return run_chaos_drill(g, spf::Metric::Weighted, a, cfg, rng);
}

// ---------------------------------------------------------------------------
// FaultPlan: keyed-hash determinism.
// ---------------------------------------------------------------------------

TEST(FaultPlan, QueriesAreOrderIndependent) {
  FaultSpec spec;
  spec.lsa_loss = 0.3;
  spec.lsa_jitter = 2.0;
  spec.lsa_dup = 0.2;
  const FaultPlan a(spec, 42);
  const FaultPlan b(spec, 42);

  // Query b in reverse order — answers must match a's exactly.
  std::vector<LsaFate> forward;
  for (std::uint64_t gen = 1; gen <= 50; ++gen) {
    forward.push_back(a.lsa_fate(3, gen, 7));
  }
  for (std::uint64_t gen = 50; gen >= 1; --gen) {
    const LsaFate f = b.lsa_fate(3, gen, 7);
    const LsaFate& w = forward[gen - 1];
    EXPECT_EQ(f.lost, w.lost) << "gen " << gen;
    EXPECT_EQ(f.extra_delay, w.extra_delay) << "gen " << gen;
    EXPECT_EQ(f.duplicated, w.duplicated) << "gen " << gen;
  }
}

TEST(FaultPlan, SeedsAndKeysDecorrelate) {
  FaultSpec spec;
  spec.lsa_loss = 0.5;
  const FaultPlan a(spec, 1);
  const FaultPlan b(spec, 2);
  int differing = 0;
  int lost = 0;
  for (std::uint64_t gen = 1; gen <= 400; ++gen) {
    const bool la = a.lsa_fate(0, gen, 0).lost;
    if (la != b.lsa_fate(0, gen, 0).lost) ++differing;
    if (la) ++lost;
  }
  EXPECT_GT(differing, 100) << "different seeds should disagree often";
  // Loss rate 0.5 over 400 draws: far outside [120, 280] means broken mixing.
  EXPECT_GT(lost, 120);
  EXPECT_LT(lost, 280);
}

TEST(ChaosFlood, FateGatesDeliveries) {
  const Graph g = topo::make_ring(6);
  FaultSpec all_lost;
  all_lost.lsa_loss = 1.0;
  const FaultPlan plan(all_lost, 7);
  FailureMask mask;
  mask.fail_edge(0);
  const ChaosLsaOutcome out =
      chaos_vantage_delivery(g, mask, 0, 1, 0.0, 3, plan, {});
  EXPECT_TRUE(out.primary_lost);
  EXPECT_TRUE(out.deliveries.empty());

  // A vantage cut off from both endpoints is unreachable, not lost.
  const Graph two = [] {
    graph::GraphBuilder b(4);
    b.add_edge(0, 1);
    b.add_edge(2, 3);
    return b.build();
  }();
  const FaultPlan clean(FaultSpec{}, 7);
  const ChaosLsaOutcome cut =
      chaos_vantage_delivery(two, FailureMask{}, 0, 1, 0.0, 3, clean, {});
  EXPECT_TRUE(cut.unreachable);
  EXPECT_TRUE(cut.deliveries.empty());
}

// ---------------------------------------------------------------------------
// Chaos drills.
// ---------------------------------------------------------------------------

ChaosDrillConfig small_config(FaultSpec faults) {
  ChaosDrillConfig cfg;
  cfg.faults = faults;
  cfg.events = 10;
  cfg.event_spacing = 5.0;
  cfg.probes_per_event = 6;
  cfg.quiesce_probes = 40;
  return cfg;
}

FaultSpec jitter_shape(double loss) {
  FaultSpec f;
  f.lsa_loss = loss;
  f.lsa_jitter = 2.0;
  f.lsa_dup = 0.1;
  f.detect_jitter = 0.5;
  f.miss_detect = loss / 2;
  return f;
}

FaultSpec flap_shape(double loss) {
  FaultSpec f;
  f.lsa_loss = loss;
  f.flap_count = 2;
  f.down_dwell = 1.5;
  f.up_dwell = 1.5;
  f.dwell_jitter = 0.5;
  return f;
}

TEST(ChaosDrill, NoFaultsConvergesExactly) {
  const Graph g = topo::make_ring(9);
  const ChaosReport r = run_on<core::RbpcController>(
      g, small_config(FaultSpec{}), 11, /*degrade=*/false);
  expect_clean(r, "ring9/no-faults");
  EXPECT_EQ(r.lsa_lost, 0u);
  EXPECT_EQ(r.lsa_missed, 0u);
  EXPECT_FALSE(r.partitioned);
  // With no loss every transition's LSA is applied exactly once.
  EXPECT_EQ(r.lsa_applied, r.transitions);
}

TEST(ChaosDrill, CorpusSweepUnderMixedFaults) {
  // One seeded drill per corpus topology under a mixed fault shape; the
  // per-topology seed is fixed so failures reproduce.
  std::uint64_t seed = 100;
  for (const testing::TopoCase& tc : testing::corpus()) {
    ChaosDrillConfig cfg = small_config(jitter_shape(0.05));
    cfg.events = 6;
    cfg.probes_per_event = 4;
    cfg.quiesce_probes = 25;
    const ChaosReport r = run_on<core::RbpcController>(tc.g, cfg, seed++);
    expect_clean(r, tc.name);
  }
}

TEST(ChaosDrill, SeedLossShapeMatrix) {
  // The acceptance matrix: >= 20 seeds x loss {0, 1%, 10%} x two fault
  // shapes (jitter-heavy, flap-heavy). Zero post-quiescence violations and
  // zero un-TTL-guarded loops demanded throughout (the drill reports a
  // delivered looping packet as a during-churn violation).
  const Graph g = topo::make_ring(9);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (double loss : {0.0, 0.01, 0.1}) {
      for (int shape = 0; shape < 2; ++shape) {
        const FaultSpec f = shape == 0 ? jitter_shape(loss) : flap_shape(loss);
        const ChaosReport r =
            run_on<core::RbpcController>(g, small_config(f), 500 + seed);
        expect_clean(r, "ring9 seed " + std::to_string(seed) + " loss " +
                            std::to_string(loss) +
                            (shape == 0 ? " jitter" : " flap"));
      }
    }
  }
}

TEST(ChaosDrill, MergedControllerSurvivesChaos) {
  const Graph g = topo::make_grid(4, 5);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const ChaosReport r =
        run_on<core::MergedRbpcController>(g, small_config(jitter_shape(0.1)),
                                           900 + seed);
    expect_clean(r, "grid4x5/merged seed " + std::to_string(seed));
  }
}

TEST(ChaosDrill, IdenticalSeedsYieldIdenticalTraces) {
  const Graph g = topo::make_grid(4, 5);
  const ChaosDrillConfig cfg = small_config(jitter_shape(0.1));
  const ChaosReport a = run_on<core::RbpcController>(g, cfg, 77);
  const ChaosReport b = run_on<core::RbpcController>(g, cfg, 77);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.lsa_applied, b.lsa_applied);
  EXPECT_EQ(a.lsa_lost, b.lsa_lost);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.max_staleness, b.max_staleness);

  const ChaosReport c = run_on<core::RbpcController>(g, cfg, 78);
  EXPECT_NE(a.trace, c.trace) << "different seeds must differ";
}

TEST(ChaosDrill, RequiresTruthHook) {
  const Graph g = topo::make_ring(4);
  core::RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  DrillActions a = chaos_actions(ctl);
  a.set_data_failures = nullptr;
  Rng rng(1);
  EXPECT_THROW(
      run_chaos_drill(g, spf::Metric::Weighted, a, ChaosDrillConfig{}, rng),
      PreconditionError);
}

// ---------------------------------------------------------------------------
// Graceful degradation ladder (unit level).
// ---------------------------------------------------------------------------

Graph chain3() {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(Degradation, StaleChainRetainedAndRevisited) {
  const Graph g = chain3();
  core::RbpcController ctl(g, spf::Metric::Weighted);
  ctl.set_graceful_degradation(true);
  ctl.provision();

  // The controller believes link 1 died; 0->2 has no alternate route, so
  // rung 3 retains the stale chain instead of clearing the FEC entry.
  ctl.fail_link(1);
  // Every pair whose chain crossed link 1: 0->2, 2->0, 1->2, 2->1.
  EXPECT_EQ(ctl.degrade_stats().degraded_pairs, 4u);
  EXPECT_GE(ctl.degrade_stats().stale_fec, 4u);

  // Ground truth: the link is actually fine (the view is stale). The
  // retained chain keeps forwarding.
  ctl.network().set_failures(FailureMask{});
  EXPECT_TRUE(ctl.send(0, 2).delivered());

  // Ground truth agrees with the view: the stale chain drops at the dead
  // link — a drop and a count, never a crash.
  FailureMask down;
  down.fail_edge(1);
  ctl.network().set_failures(down);
  const mpls::ForwardResult r = ctl.send(0, 2);
  EXPECT_FALSE(r.delivered());
  EXPECT_EQ(r.status, mpls::ForwardStatus::LinkDown);

  // Recovery reroutes the retained pair back to the default chain.
  ctl.recover_link(1);
  EXPECT_EQ(ctl.degrade_stats().degraded_pairs, 0u);
  EXPECT_TRUE(ctl.send(0, 2).delivered());
}

TEST(Degradation, WithoutLadderThePairBreaks) {
  const Graph g = chain3();
  core::RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  EXPECT_FALSE(ctl.graceful_degradation());

  ctl.fail_link(1);
  EXPECT_EQ(ctl.degrade_stats().degraded_pairs, 0u);
  EXPECT_GE(ctl.degrade_stats().no_route, 4u);
  const mpls::ForwardResult r = ctl.send(0, 2);
  EXPECT_FALSE(r.delivered());
  EXPECT_EQ(r.status, mpls::ForwardStatus::NoFecEntry);
  EXPECT_THROW(ctl.send_or_throw(0, 2), NoRouteError);

  // Reachable pairs still answer through send_or_throw.
  EXPECT_TRUE(ctl.send_or_throw(0, 1).delivered());
}

TEST(Degradation, MergedControllerLadderMirrors) {
  const Graph g = chain3();
  core::MergedRbpcController ctl(g, spf::Metric::Weighted);
  ctl.set_graceful_degradation(true);
  ctl.provision();

  ctl.fail_link(1);
  EXPECT_EQ(ctl.degrade_stats().degraded_pairs, 4u);
  ctl.network().set_failures(FailureMask{});
  EXPECT_TRUE(ctl.send(0, 2).delivered());

  ctl.recover_link(1);
  EXPECT_EQ(ctl.degrade_stats().degraded_pairs, 0u);
  EXPECT_TRUE(ctl.send(0, 2).delivered());

  core::MergedRbpcController strict(g, spf::Metric::Weighted);
  strict.provision();
  strict.fail_link(1);
  EXPECT_THROW(strict.send_or_throw(0, 2), NoRouteError);
}

TEST(Degradation, ChaosDrillExercisesTheLadder) {
  // On a bridge-heavy topology (comb teeth hang off a spine), chaos churn
  // with degradation enabled must still satisfy both invariant regimes,
  // and the ladder counters should register activity.
  const Graph g = topo::make_comb(4).g;
  ChaosDrillConfig cfg = small_config(jitter_shape(0.1));
  cfg.max_concurrent = 2;
  const ChaosReport r = run_on<core::RbpcController>(g, cfg, 1234);
  expect_clean(r, "comb4/ladder");
}

}  // namespace
}  // namespace rbpc::chaos
