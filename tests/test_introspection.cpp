// Tests for the live introspection plane (src/obs): request-trace records,
// the flight recorder's seqlock rings, SLO tracking, and the scrape
// endpoint. Standalone binary so the TSan CI job can hammer the
// concurrent-publish/collect and live-scrape paths directly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/slo.hpp"
#include "util/histogram.hpp"

namespace {

using namespace rbpc;

obs::RerouteRecord make_record(std::uint64_t id) {
  obs::RerouteRecord r;
  r.request_id = id;
  r.enqueue_ns = 100 * id;
  r.start_ns = 100 * id + 10;
  r.snapshot_ns = 100 * id + 20;
  r.spf_ns = 100 * id + 40;
  r.decompose_ns = 100 * id + 60;
  r.install_ns = 100 * id + 80;
  r.done_ns = 100 * id + 90;
  r.snapshot_version = id;
  r.demand = static_cast<std::uint32_t>(id % 7);
  r.src = 3;
  r.dst = 5;
  r.worker = 1;
  r.rung = static_cast<std::uint8_t>(obs::Rung::kRepaired);
  r.flags = obs::kFlagInstalled | obs::kFlagRevalidated;
  return r;
}

TEST(RequestTrace, PackUnpackRoundTripsEveryField) {
  const obs::RerouteRecord in = make_record(42);
  std::uint64_t words[obs::RerouteRecord::kWords];
  in.pack(words);
  const obs::RerouteRecord out = obs::RerouteRecord::unpack(words);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.enqueue_ns, in.enqueue_ns);
  EXPECT_EQ(out.start_ns, in.start_ns);
  EXPECT_EQ(out.snapshot_ns, in.snapshot_ns);
  EXPECT_EQ(out.spf_ns, in.spf_ns);
  EXPECT_EQ(out.decompose_ns, in.decompose_ns);
  EXPECT_EQ(out.install_ns, in.install_ns);
  EXPECT_EQ(out.done_ns, in.done_ns);
  EXPECT_EQ(out.snapshot_version, in.snapshot_version);
  EXPECT_EQ(out.demand, in.demand);
  EXPECT_EQ(out.src, in.src);
  EXPECT_EQ(out.dst, in.dst);
  EXPECT_EQ(out.worker, in.worker);
  EXPECT_EQ(out.rung, in.rung);
  EXPECT_EQ(out.flags, in.flags);
}

TEST(RequestTrace, RequestIdsAreUniqueAndNonzero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = obs::next_request_id();
    EXPECT_NE(id, 0u);  // 0 is the "no request" sentinel
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(RequestTrace, RungNamesCoverTheLadder) {
  EXPECT_STREQ(obs::rung_name(obs::Rung::kCached), "cached");
  EXPECT_STREQ(obs::rung_name(obs::Rung::kRepaired), "repaired");
  EXPECT_STREQ(obs::rung_name(obs::Rung::kScratch), "scratch");
  EXPECT_STREQ(obs::rung_name(obs::Rung::kStaleFec), "stale-fec");
  EXPECT_STREQ(obs::rung_name(obs::Rung::kNoRoute), "no-route");
}

TEST(FlightRecorder, CollectReturnsPublishedRecords) {
  obs::FlightRecorder rec(2, 8);
  EXPECT_EQ(rec.workers(), 2u);
  EXPECT_EQ(rec.ring_size(), 8u);
  rec.publish(0, make_record(1));
  rec.publish(1, make_record(2));
  rec.publish(0, make_record(3));
  const std::vector<obs::RerouteRecord> got = rec.collect();
  ASSERT_EQ(got.size(), 3u);
  // collect() orders by done_ns.
  EXPECT_EQ(got[0].request_id, 1u);
  EXPECT_EQ(got[1].request_id, 2u);
  EXPECT_EQ(got[2].request_id, 3u);
  EXPECT_EQ(rec.published(), 3u);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastN) {
  obs::FlightRecorder rec(1, 4);
  for (std::uint64_t id = 1; id <= 10; ++id) rec.publish(0, make_record(id));
  const std::vector<obs::RerouteRecord> got = rec.collect();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got.front().request_id, 7u);
  EXPECT_EQ(got.back().request_id, 10u);
  EXPECT_EQ(rec.published(), 10u);
}

TEST(FlightRecorder, OutOfRangeWorkerFallsThroughToControlRing) {
  obs::FlightRecorder rec(1, 4);
  rec.publish(99, make_record(5));  // no such worker ring
  rec.publish_control(make_record(6));
  const std::vector<obs::RerouteRecord> got = rec.collect();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].request_id, 5u);
  EXPECT_EQ(got[1].request_id, 6u);
}

TEST(FlightRecorder, DumpJsonNamesRequestIdsAndRungs) {
  obs::FlightRecorder rec(1, 8);
  obs::RerouteRecord r = make_record(77);
  r.rung = static_cast<std::uint8_t>(obs::Rung::kScratch);
  rec.publish(0, r);
  const std::string json = rec.dump_json("unit test");
  EXPECT_NE(json.find("\"reason\": \"unit test\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"rung_name\": \"scratch\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_tail\""), std::string::npos);
}

TEST(FlightRecorder, ConcurrentPublishAndCollectStaysCoherent) {
  // One writer per ring plus a concurrent collector: every record a collect
  // returns must be internally consistent (unpacked fields match the
  // make_record shape), torn slots are skipped and counted — never
  // garbled. This is the suite's TSan target.
  constexpr std::size_t kPerWriter = 50'000;
  obs::FlightRecorder rec(4, 16);
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 4; ++w) {
    writers.emplace_back([&rec, w, &done] {
      std::uint64_t id = w * 1'000'000 + 1;
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        rec.publish(w, make_record(id++));
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  std::size_t collected = 0;
  while (done.load(std::memory_order_acquire) < 4) {
    for (const obs::RerouteRecord& r : rec.collect()) {
      ++collected;
      // Internal consistency: all fields derive from one id.
      ASSERT_EQ(r.enqueue_ns, 100 * r.request_id);
      ASSERT_EQ(r.done_ns, 100 * r.request_id + 90);
      ASSERT_EQ(r.snapshot_version, r.request_id);
      ASSERT_EQ(r.demand, r.request_id % 7);
    }
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(rec.published(), 4u * kPerWriter);
  // A final quiescent collect sees every slot cleanly — no torn skips once
  // the writers are gone. The mid-churn loop above may never observe a
  // record on a fast machine (writers can finish before the collector's
  // first pass), so the deterministic consistency sweep runs here.
  const std::vector<obs::RerouteRecord> settled = rec.collect();
  EXPECT_EQ(settled.size(), 4u * 16u);
  for (const obs::RerouteRecord& r : settled) {
    ASSERT_EQ(r.enqueue_ns, 100 * r.request_id);
    ASSERT_EQ(r.done_ns, 100 * r.request_id + 90);
    ASSERT_EQ(r.snapshot_version, r.request_id);
    ASSERT_EQ(r.demand, r.request_id % 7);
    ++collected;
  }
  EXPECT_GE(collected, 4u * 16u);
}

TEST(SloTracker, HistogramDeltaIsExactBucketwise) {
  LatencyHistogram prev;
  prev.record(3);
  prev.record(100);
  LatencyHistogram cur = prev;
  cur.record(3);
  cur.record(5000);
  const LatencyHistogram delta = obs::histogram_delta(cur, prev);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.bucket_count(LatencyHistogram::bucket_of(3)), 1u);
  EXPECT_EQ(delta.bucket_count(LatencyHistogram::bucket_of(5000)), 1u);
  EXPECT_EQ(delta.sum(), 3u + 5000u);
}

TEST(SloTracker, QuantileObjectiveBreachesAndRecovers) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "registry disabled in this build";
  obs::MetricsRegistry reg;
  obs::Histogram lat = reg.histogram("t.latency");
  obs::SloTracker slo(reg,
                      {obs::SloObjective{.name = "p99",
                                         .histogram = "t.latency",
                                         .quantile = 0.99,
                                         .threshold = 1000}});

  for (int i = 0; i < 100; ++i) lat.record(10);
  EXPECT_EQ(slo.tick(), 0u);
  EXPECT_EQ(slo.last_breached(), 0u);

  // A slow interval pushes the windowed p99 over the objective.
  for (int i = 0; i < 100; ++i) lat.record(50'000);
  EXPECT_EQ(slo.tick(), 1u);
  EXPECT_EQ(slo.last_breached(), 1u);
  ASSERT_EQ(slo.status().size(), 1u);
  EXPECT_TRUE(slo.status()[0].breached);
  EXPECT_GT(slo.status()[0].burn_pm, 1000u);  // violating, not just burning

  // Quiet ticks age the slow interval out of the rolling window: it stays
  // in the kWindowTicks-deep window for 5 more ticks (each still counted as
  // a breach — slo.breach bumps once per breached objective per tick) and
  // is evicted on the 6th, when the objective recovers.
  for (std::size_t i = 0; i < obs::SloTracker::kWindowTicks; ++i) {
    for (int j = 0; j < 100; ++j) lat.record(10);
    slo.tick();
  }
  EXPECT_EQ(slo.last_breached(), 0u);
  EXPECT_EQ(slo.total_breaches(), obs::SloTracker::kWindowTicks);
  EXPECT_EQ(reg.counter("slo.breach").value(), obs::SloTracker::kWindowTicks);

  // The slo.* export is in the same registry.
  EXPECT_EQ(reg.gauge("slo.p99.objective").value(), 1000);
  EXPECT_EQ(reg.gauge("slo.p99.breached").value(), 0);
}

TEST(SloTracker, RatioObjectiveComparesGauges) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "registry disabled in this build";
  obs::MetricsRegistry reg;
  reg.gauge("t.bad").set(3);
  reg.gauge("t.all").set(100);
  obs::SloTracker slo(reg, {},
                      {obs::SloRatioObjective{.name = "bad_frac",
                                              .numerator = "t.bad",
                                              .denominator = "t.all",
                                              .max_per_mille = 10}});
  EXPECT_EQ(slo.tick(), 1u);  // 30 per-mille > 10
  reg.gauge("t.bad").set(0);
  EXPECT_EQ(slo.tick(), 0u);
  // Zero/negative denominator reads as ratio 0, not a division crash.
  reg.gauge("t.all").set(0);
  reg.gauge("t.bad").set(5);
  EXPECT_EQ(slo.tick(), 0u);
  const std::string json = slo.to_json();
  EXPECT_NE(json.find("\"bad_frac\""), std::string::npos);
}

// --- Scrape endpoint -------------------------------------------------------

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (headers + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ExpositionServer, ServesPrometheusJsonFlightAndSlo) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "registry disabled in this build";
  obs::MetricsRegistry reg;
  reg.counter("end.point.hits").add(7);
  obs::Histogram lat = reg.histogram("end.latency");
  lat.record_with_exemplar(100, 12345);
  obs::FlightRecorder flight(1, 8);
  flight.publish(0, make_record(9));
  obs::SloTracker slo(reg,
                      {obs::SloObjective{.name = "lat",
                                         .histogram = "end.latency",
                                         .quantile = 0.5,
                                         .threshold = 1'000'000}});
  obs::ExpositionOptions eo;
  eo.registry = &reg;
  eo.flight = &flight;
  eo.slo = &slo;
  obs::ExpositionServer server(eo);
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  // Dotted names are sanitized, counters suffixed _total.
  EXPECT_NE(metrics.find("end_point_hits_total 7"), std::string::npos);
  EXPECT_NE(metrics.find("end_latency_bucket"), std::string::npos);
  EXPECT_NE(metrics.find("request_id=\"12345\""), std::string::npos);

  const std::string json = http_get(server.port(), "/metrics.json");
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"end.point.hits\": 7"), std::string::npos);

  const std::string fl = http_get(server.port(), "/flight");
  EXPECT_NE(fl.find("\"request_id\": 9"), std::string::npos);

  const std::string slo_body = http_get(server.port(), "/slo");
  EXPECT_NE(slo_body.find("\"lat\""), std::string::npos);
  // The scrape ticked the tracker.
  EXPECT_EQ(slo.status().size(), 1u);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_GE(server.scrapes(), 5u);

  server.stop();
  server.stop();  // idempotent
}

TEST(ExpositionServer, ConcurrentScrapesDuringPublishes) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "registry disabled in this build";
  obs::MetricsRegistry reg;
  obs::FlightRecorder flight(2, 8);
  obs::ExpositionOptions eo;
  eo.registry = &reg;
  eo.flight = &flight;
  obs::ExpositionServer server(eo);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t id = 1;
    obs::Counter c = reg.counter("stress.counter");
    obs::Histogram h = reg.histogram("stress.hist");
    while (!stop.load(std::memory_order_relaxed)) {
      c.inc();
      h.record_with_exemplar(id % 4096, id);
      flight.publish(id % 2, make_record(id));
      ++id;
    }
  });
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(http_get(server.port(), "/metrics").find("200 OK"),
              std::string::npos);
    EXPECT_NE(http_get(server.port(), "/flight").find("records"),
              std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
