// Property tests for the paper's theory (Section 3).
//
// Theorem 1: after k edge failures in an unweighted network, each new
//   shortest path is a concatenation of at most k + 1 original shortest
//   paths. Verified on random-graph sweeps (greedy decomposition is optimal
//   for the subpath-closed all-pairs set, so its piece count is a valid
//   witness) and shown tight on the comb gadget (Figure 2).
//
// Theorem 2: weighted networks need at most k + 1 original shortest paths
//   interleaved with k loose edges (total 2k + 1 components). Verified on
//   weighted sweeps; tight on the weighted-chain gadget (Figure 3).
//
// Theorem 3: a single-shortest-path-per-pair base set (deterministic
//   padding) suffices for the Theorem-2 bound. Verified on sweeps with the
//   canonical base set; the parallel-chain example shows 2k + 1 components
//   are really needed for a padded base set.
//
// Negative results: router failures can force ~(n-2)/2 components (Figure
//   4 gadget); the theorems fail on directed graphs (Figure 5 gadget); the
//   4-cycle needs 3 components for some single failure under any
//   one-path-per-pair base set.
#include <gtest/gtest.h>

#include <tuple>

#include "core/base_set.hpp"
#include "core/decompose.hpp"
#include "graph/analysis.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "theorem_props.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

// Shared property harness (also used by the k >= 2 multi-failure suite).
using rbpc::testing::check_restoration;
using rbpc::testing::lemma_bound;
using rbpc::testing::random_edge_failures;
using rbpc::testing::theorem1_bound;
using rbpc::testing::theorem2_bound;

// --- Theorem 1 sweep --------------------------------------------------------------

// Parameters: (nodes, edges, k failures, seed).
class Theorem1Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Theorem1Sweep, NewShortestPathNeedsAtMostKPlus1Pieces) {
  const auto [n, m, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = topo::make_random_connected(static_cast<std::size_t>(n),
                                        static_cast<std::size_t>(m), rng, 1);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet base(oracle);

  for (int trial = 0; trial < 12; ++trial) {
    const FailureMask mask =
        random_edge_failures(g, static_cast<std::size_t>(k), rng);
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const Path backup = spf::shortest_path(
        g, s, t, mask,
        spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
    if (backup.empty()) continue;  // disconnected by the failures

    const Decomposition d = greedy_decompose(base, backup);
    EXPECT_TRUE(check_restoration(base, mask, backup, d)) << "k=" << k;
    // Unweighted simple graph: every edge is itself a shortest path, so
    // every piece is a base path, and Theorem 1 bounds the count.
    EXPECT_EQ(d.edge_count(), 0u);
    EXPECT_LE(d.size(), theorem1_bound(static_cast<std::size_t>(k)))
        << "k=" << k << " backup=" << backup.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnweighted, Theorem1Sweep,
    ::testing::Values(std::make_tuple(12, 20, 1, 101),
                      std::make_tuple(12, 20, 2, 102),
                      std::make_tuple(20, 40, 1, 103),
                      std::make_tuple(20, 40, 3, 104),
                      std::make_tuple(30, 60, 2, 105),
                      std::make_tuple(30, 60, 4, 106),
                      std::make_tuple(40, 70, 5, 107),
                      std::make_tuple(50, 120, 3, 108),
                      std::make_tuple(60, 110, 6, 109)));

// --- Theorem 2 sweep ---------------------------------------------------------------

class Theorem2Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Theorem2Sweep, WeightedNeedsAtMost2KPlus1Components) {
  const auto [n, m, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = topo::make_random_connected(static_cast<std::size_t>(n),
                                        static_cast<std::size_t>(m), rng, 20);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet base(oracle);

  for (int trial = 0; trial < 12; ++trial) {
    const FailureMask mask =
        random_edge_failures(g, static_cast<std::size_t>(k), rng);
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const Path backup =
        spf::shortest_path(g, s, t, mask, spf::SpfOptions{.padded = true});
    if (backup.empty()) continue;

    const Decomposition d = greedy_decompose(base, backup);
    EXPECT_TRUE(check_restoration(base, mask, backup, d)) << "k=" << k;
    // Theorem 2: some decomposition uses <= k+1 paths and <= k edges;
    // greedy minimizes the total count, so it is within 2k+1.
    EXPECT_LE(d.size(), theorem2_bound(static_cast<std::size_t>(k)))
        << "k=" << k << " backup=" << backup.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWeighted, Theorem2Sweep,
    ::testing::Values(std::make_tuple(12, 20, 1, 201),
                      std::make_tuple(12, 24, 2, 202),
                      std::make_tuple(20, 40, 1, 203),
                      std::make_tuple(20, 40, 3, 204),
                      std::make_tuple(30, 60, 2, 205),
                      std::make_tuple(30, 70, 4, 206),
                      std::make_tuple(40, 80, 5, 207),
                      std::make_tuple(50, 120, 3, 208)));

// --- Theorem 3 sweep (canonical one-path-per-pair base set) ---------------------------

class Theorem3Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Theorem3Sweep, CanonicalBaseSetAchievesTheorem2Bound) {
  const auto [n, m, k, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = topo::make_random_connected(static_cast<std::size_t>(n),
                                        static_cast<std::size_t>(m), rng, 15);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet base(oracle);

  for (int trial = 0; trial < 12; ++trial) {
    const FailureMask mask =
        random_edge_failures(g, static_cast<std::size_t>(k), rng);
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    // The padded restoration route decomposes against the padded base set.
    const Path backup =
        spf::shortest_path(g, s, t, mask, spf::SpfOptions{.padded = true});
    if (backup.empty()) continue;

    const Decomposition d = greedy_decompose(base, backup);
    EXPECT_TRUE(check_restoration(base, mask, backup, d)) << "k=" << k;
    EXPECT_LE(d.size(), theorem2_bound(static_cast<std::size_t>(k)))
        << "k=" << k << " backup=" << backup.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCanonical, Theorem3Sweep,
    ::testing::Values(std::make_tuple(12, 20, 1, 301),
                      std::make_tuple(20, 40, 2, 302),
                      std::make_tuple(30, 60, 3, 303),
                      std::make_tuple(40, 80, 4, 304),
                      std::make_tuple(25, 50, 5, 305)));

// --- Corollary 4 sweep: expanded set avoids loose edges for k = 1 ---------------------

TEST(Corollary4, ExpandedSetCoversOneFailureWithTwoBasePieces) {
  Rng rng(401);
  const Graph g = topo::make_random_connected(25, 55, rng, 9);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  ExpandedBaseSet expanded(oracle);

  for (int trial = 0; trial < 40; ++trial) {
    const EdgeId fail = static_cast<EdgeId>(rng.below(g.num_edges()));
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const FailureMask mask = FailureMask::of_edges({fail});
    const Path backup =
        spf::shortest_path(g, s, t, mask, spf::SpfOptions{.padded = true});
    if (backup.empty()) continue;
    const Decomposition d = greedy_decompose(expanded, backup);
    EXPECT_TRUE(check_restoration(expanded, mask, backup, d));
    // Corollary 4 with k = 1: two expanded-base paths suffice (no loose
    // edges needed).
    EXPECT_LE(d.size(), 2u) << backup.to_string();
    EXPECT_EQ(d.edge_count(), 0u) << backup.to_string();
  }
}

// --- tightness gadgets ------------------------------------------------------------------

class CombTightness : public ::testing::TestWithParam<int> {};

TEST_P(CombTightness, NeedsExactlyKPlus1Pieces) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  const auto comb = topo::make_comb(k);
  spf::DistanceOracle oracle(comb.g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet base(oracle);
  const FailureMask mask = FailureMask::of_edges(comb.spine_edges);
  const Path backup = spf::shortest_path(
      comb.g, comb.s, comb.t, mask,
      spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
  ASSERT_FALSE(backup.empty());
  EXPECT_EQ(backup.hops(), 2 * k);
  const Decomposition d = greedy_decompose(base, backup);
  // Greedy is optimal for the all-pairs set, so this witnesses both the
  // upper bound (Theorem 1) and the tightness of the comb example.
  EXPECT_EQ(d.size(), k + 1);
}

INSTANTIATE_TEST_SUITE_P(Figure2, CombTightness,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

class WeightedChainTightness : public ::testing::TestWithParam<int> {};

TEST_P(WeightedChainTightness, NeedsKPlus1PathsAndKEdges) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  const auto chain = topo::make_weighted_chain(k);
  spf::DistanceOracle oracle(chain.g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet base(oracle);
  const FailureMask mask = FailureMask::of_edges(chain.cheap_parallel_edges);
  const Path backup = spf::shortest_path(chain.g, chain.s, chain.t, mask,
                                         spf::SpfOptions{.padded = true});
  ASSERT_FALSE(backup.empty());
  const Decomposition d = greedy_decompose(base, backup);
  EXPECT_EQ(d.base_count(), k + 1);
  EXPECT_EQ(d.edge_count(), k);
  EXPECT_EQ(d.size(), 2 * k + 1);
}

INSTANTIATE_TEST_SUITE_P(Figure3, WeightedChainTightness,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(Theorem3Tightness, ParallelChainForces2KPlus1Components) {
  // The paper's parallel-chain discussion: with a padded base set, failing
  // the canonical edge of each odd consecutive pair forces 2k+1 components.
  const std::size_t k = 3;
  const auto pc = topo::make_parallel_chain(k);
  spf::DistanceOracle oracle(pc.g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet base(oracle);

  // Identify the canonical (padding-chosen) edge of each pair and fail the
  // odd ones (pairs 1, 3, 5, ...).
  FailureMask mask;
  std::size_t failed = 0;
  for (std::size_t i = 1; i < pc.pairs.size() && failed < k; i += 2) {
    const NodeId u = static_cast<NodeId>(i);
    const Path canon = oracle.canonical_path(u, u + 1);
    ASSERT_EQ(canon.hops(), 1u);
    mask.fail_edge(canon.edge(0));
    ++failed;
  }
  ASSERT_EQ(failed, k);

  const Path backup = spf::shortest_path(
      pc.g, pc.s, pc.t, mask,
      spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
  ASSERT_FALSE(backup.empty());
  const Decomposition d = greedy_decompose(base, backup);
  EXPECT_EQ(d.size(), 2 * k + 1);
  EXPECT_EQ(d.edge_count(), k);  // the k non-canonical twins
}

TEST(FourCycleNegative, SomeSingleFailureNeedsThreeComponents) {
  // For any one-path-per-pair base set on C4, some single link failure
  // requires 3 components. Check that the padding-chosen set exhibits it.
  const Graph g = topo::make_four_cycle();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet base(oracle);

  std::size_t worst = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const FailureMask mask = FailureMask::of_edges({e});
    for (NodeId s = 0; s < 4; ++s) {
      for (NodeId t = 0; t < 4; ++t) {
        if (s == t) continue;
        const Path backup = spf::shortest_path(
            g, s, t, mask,
            spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
        if (backup.empty()) continue;
        worst = std::max(worst, greedy_decompose(base, backup).size());
      }
    }
  }
  EXPECT_EQ(worst, 3u);
}

TEST(RouterFailureNegative, StarGadgetForcesLinearConcatenation) {
  // Figure 4: hub failure makes the only s-t route the (n-3)-hop chain;
  // original shortest paths have <= 2 hops, so ceil((n-2)/2)-ish pieces are
  // unavoidable.
  const std::size_t n = 20;
  const auto star = topo::make_two_level_star(n);
  spf::DistanceOracle oracle(star.g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet base(oracle);
  const FailureMask mask = FailureMask::of_nodes({star.hub});
  const Path backup = spf::shortest_path(
      star.g, star.s, star.t, mask,
      spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
  ASSERT_FALSE(backup.empty());
  const std::size_t hops = backup.hops();  // n - 2 hops along the chain
  EXPECT_EQ(hops, n - 2);
  const Decomposition d = greedy_decompose(base, backup);
  EXPECT_GE(d.size(), (n - 2) / 2);
  EXPECT_EQ(d.size(), (hops + 1) / 2);
}

TEST(DirectedNegative, Theorem1FailsOnDirectedGraphs) {
  // Figure 5: one failure, yet ~(n-2)/3 original shortest paths are needed.
  const std::size_t m = 12;
  const auto gadget = topo::make_directed_counterexample(m);
  spf::DistanceOracle oracle(gadget.g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet base(oracle);
  const FailureMask mask = FailureMask::of_edges({gadget.ab_edge});
  const Path backup = spf::shortest_path(
      gadget.g, gadget.s, gadget.t, mask,
      spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
  ASSERT_FALSE(backup.empty());
  EXPECT_EQ(backup.hops(), m);
  const Decomposition d = greedy_decompose(base, backup);
  // Pieces are capped at 3 hops (the a-b shortcut kills longer subpaths),
  // so k+1 = 2 is impossible: the count grows linearly with n.
  EXPECT_EQ(d.size(), (m + 2) / 3);
  EXPECT_GT(d.size(), 2u);
}

// --- theorem-independent sanity: restoration only needs surviving pieces ----------------

TEST(Soundness, DecompositionPiecesSurviveTheFailures) {
  Rng rng(501);
  const Graph g = topo::make_random_connected(30, 70, rng, 10);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet base(oracle);
  for (int trial = 0; trial < 30; ++trial) {
    const FailureMask mask = random_edge_failures(g, 3, rng);
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const Path backup =
        spf::shortest_path(g, s, t, mask, spf::SpfOptions{.padded = true});
    if (backup.empty()) continue;
    // check_restoration includes piece survival (plus the full
    // single-failure lemma property set).
    EXPECT_TRUE(
        check_restoration(base, mask, backup, greedy_decompose(base, backup)));
  }
}

}  // namespace
}  // namespace rbpc::core
