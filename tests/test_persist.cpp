// Crash-injection and recovery property suite for the persistence plane
// (src/persist + the RestorationService recovery path).
//
// The central property (ISSUE: crash-safe persistence): kill the process at
// *every* durability-operation boundary — clean stop, torn write, bit-flip —
// and recovery must (a) never crash or throw, (b) find a readable snapshot
// whenever the first rotation ever published one, and (c) after the LSA
// flood's redelivery, converge to a FEC table bit-identical to the serial
// source-RBPC restoration of the final failure mask. The sweep runs the
// service single-worker with a quiesce between ingests and explicit
// checkpoint() calls, so the operation numbering (and hence every kill
// point) is deterministic; FailpointIo models the dying process and a plain
// FileIo plays the disk the next process boots from.
//
// Built standalone (rbpc_add_test) so the CI crash-matrix job runs it under
// ASan/UBSan on both compilers.
#include <gtest/gtest.h>

#include "corpus.hpp"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/storm.hpp"
#include "core/base_set.hpp"
#include "core/restoration.hpp"
#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "persist/format.hpp"
#include "persist/io.hpp"
#include "persist/store.hpp"
#include "service/service.hpp"
#include "spf/oracle.hpp"
#include "util/rng.hpp"

namespace rbpc::service {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using rbpc::testing::TopoCase;
using rbpc::testing::corpus;

// --- Shared scaffolding ----------------------------------------------------

/// A unique on-disk store directory, removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "rbpc_persist_XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<Demand> random_demands(const Graph& g, std::size_t count,
                                   Rng& rng) {
  std::vector<Demand> demands;
  while (demands.size() < count) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    demands.push_back(Demand{s, t});
  }
  return demands;
}

/// Ground truth: serial source-RBPC restoration against the final mask.
std::vector<core::Restoration> serial_replay(const Graph& g,
                                             spf::Metric metric,
                                             const std::vector<Demand>& demands,
                                             const FailureMask& mask) {
  spf::DistanceOracle oracle(g, FailureMask{}, metric);
  core::CanonicalBaseSet base(oracle);
  std::vector<core::Restoration> out;
  out.reserve(demands.size());
  for (const Demand& d : demands) {
    out.push_back(core::source_rbpc_restore(base, d.src, d.dst, mask));
  }
  return out;
}

void expect_identical_tables(const std::vector<core::Restoration>& want,
                             const std::vector<core::Restoration>& got,
                             const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const std::string ctx = context + " demand " + std::to_string(i);
    EXPECT_EQ(want[i].backup, got[i].backup) << ctx << ": backup differs";
    EXPECT_EQ(want[i].decomposition, got[i].decomposition)
        << ctx << ": decomposition differs";
  }
}

/// Mild storm: the sweep re-runs the whole scenario once per kill point, so
/// the per-run op count has to stay small while still exercising loss,
/// reorder, duplication and flaps.
chaos::StormConfig sweep_storm_config() {
  chaos::StormConfig config;
  config.events = 6;
  config.max_concurrent = 2;
  config.faults.lsa_loss = 0.15;
  config.faults.lsa_jitter = 4.0;
  config.faults.lsa_dup = 0.15;
  config.faults.detect_jitter = 1.0;
  config.faults.miss_detect = 0.1;
  config.faults.flap_count = 1;
  return config;
}

/// Deterministic-op-order service configuration: one worker, one shard, no
/// maintenance thread (rotation only through explicit checkpoint()).
ServiceOptions sweep_options(const std::string& dir, persist::PersistIo* io) {
  ServiceOptions o;
  o.workers = 1;
  o.shards = 1;
  o.queue_capacity = 64;
  o.persist.dir = dir;
  o.persist.maintenance_interval_us = 0;
  o.persist.io = io;
  return o;
}

/// Drives the scenario until done — or until the armed kill fires, at which
/// point the process is "dead" and feeding it further events is meaningless.
void run_scenario(RestorationService& svc,
                  const std::vector<chaos::StormEvent>& deliveries,
                  const persist::FailpointIo* fp) {
  std::size_t i = 0;
  for (const chaos::StormEvent& d : deliveries) {
    if (fp != nullptr && fp->fired()) return;
    svc.ingest(d.event);
    svc.quiesce();
    if (++i % 3 == 0) svc.checkpoint();
  }
}

/// One full kill-point sweep over one topology: for every durability
/// operation in the deterministic schedule, crash there in `mode`, recover
/// through the real filesystem, redeliver the flood, and require the
/// quiescent table to match the serial replay bit for bit.
void sweep_topology(const TopoCase& tc, std::uint64_t seed,
                    persist::FailMode mode) {
  const Graph& g = tc.g;
  Rng rng(seed);
  const std::vector<Demand> demands = random_demands(g, 5, rng);
  const chaos::Storm storm = chaos::plan_storm(g, sweep_storm_config(), rng);
  const std::vector<core::Restoration> want = serial_replay(
      g, ServiceOptions{}.metric, demands, storm.final_mask());

  TempDir dir;
  persist::FileIo disk;
  persist::FailpointIo fp(disk);

  // Counting run: huge kill point, so ops_seen() after the run is the total
  // number of kill points to sweep; the count after construction bounds the
  // ops of the initial rotation (the first published snapshot).
  fp.arm(std::numeric_limits<std::uint64_t>::max(), mode);
  std::uint64_t construction_ops = 0;
  {
    RestorationService svc(g, demands, sweep_options(dir.path, &fp));
    construction_ops = fp.ops_seen();
    run_scenario(svc, storm.deliveries, nullptr);
  }
  const std::uint64_t total_ops = fp.ops_seen();
  ASSERT_GT(total_ops, construction_ops) << tc.name;

  // k == total_ops is the no-crash control.
  for (std::uint64_t k = 0; k <= total_ops; ++k) {
    const std::string ctx =
        tc.name + " kill@" + std::to_string(k) + "/" +
        std::to_string(total_ops) + " mode=" +
        std::to_string(static_cast<int>(mode));
    persist::PersistentStore::wipe(disk, dir.path);
    fp.arm(k, mode);
    {
      RestorationService svc(g, demands, sweep_options(dir.path, &fp));
      run_scenario(svc, storm.deliveries, &fp);
    }  // process memory gone: the other half of the crash

    // Reboot on the real disk. Must never throw, whatever the kill left.
    RestorationService svc2(g, demands, sweep_options(dir.path, &disk));
    if (k >= construction_ops) {
      // Rotation atomicity: once the constructor published snapshot #1, no
      // later kill point may leave the directory without a readable one.
      EXPECT_TRUE(svc2.recovered()) << ctx << ": snapshot lost";
    }
    // The flood's refresh redelivers everything; generation gating discards
    // what the recovered LSDB already knows.
    for (const chaos::StormEvent& d : storm.deliveries) svc2.ingest(d.event);
    svc2.quiesce();
    expect_identical_tables(want, svc2.routes(), ctx);
    if (::testing::Test::HasFailure()) return;  // one kill point is enough
  }
}

// --- Kill-point sweeps across the corpus -----------------------------------

class CrashSweepStop : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweepStop, RecoveryConvergesFromEveryKillPoint) {
  const std::vector<TopoCase> cases = corpus();
  const std::size_t ci = static_cast<std::size_t>(GetParam());
  ASSERT_LT(ci, cases.size());
  sweep_topology(cases[ci], 7100 + ci, persist::FailMode::kStop);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CrashSweepStop, ::testing::Range(0, 60),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus()[static_cast<std::size_t>(
                                               info.param)].name;
                         });

// Torn-write and bit-flip modes land corrupted bytes that recovery must
// detect via CRC; sweep them on a cross-section of the corpus (every fifth
// topology touches every family: gadgets, SRLG shapes, all three random
// families).
class CrashSweepTorn : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweepTorn, RecoveryConvergesFromEveryKillPoint) {
  const std::vector<TopoCase> cases = corpus();
  const std::size_t ci = static_cast<std::size_t>(GetParam());
  ASSERT_LT(ci, cases.size());
  sweep_topology(cases[ci], 7300 + ci, persist::FailMode::kTorn);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CrashSweepTorn,
                         ::testing::Range(0, 60, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus()[static_cast<std::size_t>(
                                               info.param)].name;
                         });

class CrashSweepFlip : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweepFlip, RecoveryConvergesFromEveryKillPoint) {
  const std::vector<TopoCase> cases = corpus();
  const std::size_t ci = static_cast<std::size_t>(GetParam());
  ASSERT_LT(ci, cases.size());
  sweep_topology(cases[ci], 7500 + ci, persist::FailMode::kFlip);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CrashSweepFlip,
                         ::testing::Range(0, 60, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus()[static_cast<std::size_t>(
                                               info.param)].name;
                         });

// --- Graceful restart (planned downtime) -----------------------------------

TEST(GracefulRestart, RetainedFecsServeSurvivingPathsThroughDowntime) {
  const std::vector<TopoCase> cases = corpus();
  for (const std::size_t ci : {1u, 8u, 13u, 20u, 35u, 50u}) {
    const Graph& g = cases[ci].g;
    const std::string& name = cases[ci].name;
    Rng rng(7700 + ci);
    const std::vector<Demand> demands = random_demands(g, 8, rng);
    chaos::StormConfig config = sweep_storm_config();
    config.events = 10;
    const chaos::Storm storm = chaos::plan_storm(g, config, rng);
    const std::size_t half = storm.deliveries.size() / 2;

    TempDir dir;
    persist::FileIo disk;

    // First life: half the storm, then the process goes away *without* a
    // final checkpoint — the synced WAL alone must carry the state over.
    std::vector<core::Restoration> routes1;
    std::vector<bool> dirty1(demands.size(), false);
    {
      RestorationService svc(g, demands, sweep_options(dir.path, &disk));
      for (std::size_t i = 0; i < half; ++i) {
        svc.ingest(storm.deliveries[i].event);
      }
      svc.quiesce();
      routes1 = svc.routes();
      for (std::size_t d = 0; d < demands.size(); ++d) {
        dirty1[d] = svc.dirty(d);
      }
      EXPECT_GT(svc.stats().wal_appends, 0u) << name;
    }

    // Second life. Recovery must retain the pre-downtime FEC for every
    // demand it has no reason to touch: clean (route == baseline) and not
    // riding an edge the recovered LSDB knows is down. Those LSPs kept
    // delivering through the downtime (their paths survive the truth mask
    // at the crash instant whenever the LSDB view was current) and keep
    // delivering now — the graceful restart.
    RestorationService svc2(g, demands, sweep_options(dir.path, &disk));
    ASSERT_TRUE(svc2.recovered()) << name;
    const ServiceStats rs = svc2.stats();
    EXPECT_EQ(rs.replay_anomalies, 0u) << name;
    const auto view = svc2.lsdb().snapshot();
    std::size_t retained = 0;
    for (std::size_t d = 0; d < demands.size(); ++d) {
      bool rides_down = false;
      for (const EdgeId e : routes1[d].backup.edges()) {
        if (view.edge_failed(e)) rides_down = true;
      }
      if (dirty1[d] || rides_down) continue;
      ++retained;
      const core::Restoration got = svc2.route(d);
      EXPECT_EQ(routes1[d].backup, got.backup)
          << name << " demand " << d << ": retained FEC changed";
      EXPECT_EQ(routes1[d].decomposition, got.decomposition)
          << name << " demand " << d << ": retained decomposition changed";
    }
    EXPECT_EQ(retained + rs.recovery_reenqueued, demands.size()) << name;

    // Catch up: the rest of the storm plus the full redelivery refresh.
    for (std::size_t i = half; i < storm.deliveries.size(); ++i) {
      svc2.ingest(storm.deliveries[i].event);
    }
    for (const chaos::StormEvent& d : storm.deliveries) svc2.ingest(d.event);
    svc2.quiesce();
    expect_identical_tables(
        serial_replay(g, ServiceOptions{}.metric, demands,
                      storm.final_mask()),
        svc2.routes(), name + " post-restart");
  }
}

TEST(GracefulRestart, SecondRestartWithNoNewEventsIsStable) {
  const Graph g = rbpc::testing::make_wheel16();
  Rng rng(7801);
  const std::vector<Demand> demands = random_demands(g, 8, rng);
  const chaos::Storm storm = chaos::plan_storm(g, sweep_storm_config(), rng);

  TempDir dir;
  persist::FileIo disk;
  std::vector<core::Restoration> settled;
  {
    RestorationService svc(g, demands, sweep_options(dir.path, &disk));
    run_scenario(svc, storm.deliveries, nullptr);
    svc.quiesce();
    settled = svc.routes();
  }
  for (int life = 0; life < 3; ++life) {
    RestorationService svc(g, demands, sweep_options(dir.path, &disk));
    ASSERT_TRUE(svc.recovered()) << "life " << life;
    svc.quiesce();
    expect_identical_tables(settled, svc.routes(),
                            "life " + std::to_string(life));
    EXPECT_EQ(svc.stats().replay_anomalies, 0u);
  }
}

TEST(GracefulRestart, RecoveryStatsAndMetricsArePopulated) {
  const Graph g = rbpc::testing::make_wheel16();
  Rng rng(7802);
  const std::vector<Demand> demands = random_demands(g, 6, rng);
  const chaos::Storm storm = chaos::plan_storm(g, sweep_storm_config(), rng);

  TempDir dir;
  persist::FileIo disk;
  {
    RestorationService svc(g, demands, sweep_options(dir.path, &disk));
    EXPECT_TRUE(svc.persistent());
    EXPECT_FALSE(svc.recovered());
    run_scenario(svc, storm.deliveries, nullptr);
    // One fresh LSA after the last checkpoint so the WAL is guaranteed to
    // hold at least one record the next recovery must replay.
    svc.ingest(lsdb::LinkEvent{0, /*up=*/false, /*generation=*/10000});
    svc.quiesce();
    const ServiceStats s = svc.stats();
    EXPECT_GT(s.wal_appends, 0u);
    EXPECT_GT(s.wal_bytes, 0u);
    EXPECT_GE(s.persist_snapshots, 1u);
  }
  RestorationService svc2(g, demands, sweep_options(dir.path, &disk));
  EXPECT_TRUE(svc2.recovered());
  const ServiceStats s2 = svc2.stats();
  EXPECT_GT(s2.recovered_wal_records, 0u);
  EXPECT_GT(s2.recovery_us, 0u);
}

// --- PersistentStore unit behavior -----------------------------------------

persist::WalRecord link_record(EdgeId e, bool up, std::uint64_t gen) {
  persist::WalRecord r;
  r.type = persist::WalType::kLinkEvent;
  r.link = lsdb::LinkEvent{e, up, gen};
  return r;
}

TEST(PersistentStore, FreshDirRecoversEmptyAndRoundTripsAppends) {
  TempDir dir;
  persist::FileIo disk;
  persist::SnapshotState state;
  state.num_edges = 4;
  {
    persist::PersistentStore store(disk, {dir.path});
    const persist::RecoverResult rec = store.recover();
    EXPECT_FALSE(rec.found);
    EXPECT_FALSE(store.has_snapshot());
    store.rotate(state);
    EXPECT_TRUE(store.has_snapshot());
    store.append(link_record(0, false, 1));
    store.append(link_record(2, false, 3));
    EXPECT_EQ(store.records_since_rotate(), 2u);
  }
  persist::PersistentStore store(disk, {dir.path});
  const persist::RecoverResult rec = store.recover();
  ASSERT_TRUE(rec.found);
  EXPECT_EQ(rec.snapshot.num_edges, 4u);
  ASSERT_EQ(rec.wal.size(), 2u);
  EXPECT_EQ(rec.wal[0].link.edge, 0u);
  EXPECT_EQ(rec.wal[1].link.generation, 3u);
  EXPECT_FALSE(rec.wal_truncated);
}

TEST(PersistentStore, TornWalTailIsTruncatedNotFatal) {
  TempDir dir;
  persist::FileIo disk;
  std::uint64_t seq = 0;
  {
    persist::PersistentStore store(disk, {dir.path});
    store.recover();
    seq = store.rotate(persist::SnapshotState{});
    store.append(link_record(1, false, 1));
  }
  // A crash mid-append: garbage after the valid record.
  {
    auto s = disk.open_append(dir.path + "/wal-" + std::to_string(seq) +
                              ".log");
    const std::uint8_t junk[] = {0x21, 0x00, 0x00, 0x00, 0xde, 0xad};
    s->write(junk, sizeof(junk));
    s->sync();
  }
  persist::PersistentStore store(disk, {dir.path});
  const persist::RecoverResult rec = store.recover();
  ASSERT_TRUE(rec.found);
  EXPECT_TRUE(rec.wal_truncated);
  ASSERT_EQ(rec.wal.size(), 1u);
  EXPECT_EQ(rec.wal[0].link.edge, 1u);
  // The torn tail is gone from disk: appends continue on a clean file that
  // the next recovery reads back whole.
  store.append(link_record(2, false, 2));
  persist::PersistentStore again(disk, {dir.path});
  const persist::RecoverResult rec2 = again.recover();
  EXPECT_FALSE(rec2.wal_truncated);
  ASSERT_EQ(rec2.wal.size(), 2u);
}

TEST(PersistentStore, CorruptNewestSnapshotFallsBackToOlder) {
  TempDir dir;
  persist::FileIo disk;
  std::uint64_t newest = 0;
  {
    persist::PersistentStore store(disk, {dir.path});
    store.recover();
    persist::SnapshotState s1;
    s1.num_edges = 11;
    store.rotate(s1);
    persist::SnapshotState s2;
    s2.num_edges = 22;
    newest = store.rotate(s2);
  }
  // rotate() removed the older pair, so re-create an older snapshot the
  // fallback can land on, then flip a byte in the newest.
  {
    persist::SnapshotState s1;
    s1.seq = newest - 1;
    s1.num_edges = 11;
    const std::vector<std::uint8_t> bytes = persist::encode_snapshot(s1);
    auto s = disk.open_trunc(dir.path + "/snap-" +
                             std::to_string(newest - 1) + ".rbpc");
    s->write(bytes.data(), bytes.size());
    s->sync();
  }
  const std::string newest_path =
      dir.path + "/snap-" + std::to_string(newest) + ".rbpc";
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(disk.read_file(newest_path, bytes));
  bytes[bytes.size() / 2] ^= 0x01;
  {
    auto s = disk.open_trunc(newest_path);
    s->write(bytes.data(), bytes.size());
    s->sync();
  }
  persist::PersistentStore store(disk, {dir.path});
  const persist::RecoverResult rec = store.recover();
  ASSERT_TRUE(rec.found);
  EXPECT_EQ(rec.snapshot.num_edges, 11u);
  EXPECT_EQ(rec.snapshots_skipped, 1u);
  // Sequence numbers seen on disk are never reused.
  EXPECT_GT(store.rotate(persist::SnapshotState{}), newest);
}

TEST(PersistentStore, WipeClearsTheDirectory) {
  TempDir dir;
  persist::FileIo disk;
  {
    persist::PersistentStore store(disk, {dir.path});
    store.recover();
    store.rotate(persist::SnapshotState{});
    store.append(link_record(0, false, 1));
  }
  persist::PersistentStore::wipe(disk, dir.path);
  persist::PersistentStore store(disk, {dir.path});
  EXPECT_FALSE(store.recover().found);
}

// --- Format round-trips ----------------------------------------------------

TEST(PersistFormat, Crc32MatchesKnownVector) {
  const char msg[] = "123456789";
  EXPECT_EQ(persist::crc32(msg, 9), 0xCBF43926u);
}

TEST(PersistFormat, SnapshotRoundTripsExactly) {
  persist::SnapshotState s;
  s.seq = 7;
  s.lsdb_version = 42;
  s.num_edges = 9;
  s.links.push_back({3, true, 5});
  s.links.push_back({8, false, 2});
  s.arena_nodes = {0, 1, 2, 4, 5};
  s.arena_edges = {0, 1, graph::kInvalidEdge, 3, graph::kInvalidEdge};
  persist::DemandRecord d;
  d.src = 0;
  d.dst = 2;
  d.stamp = 13;
  d.route = graph::PathRef{0, 3};
  d.baseline = graph::PathRef{3, 2};
  s.demands.push_back(d);

  const persist::SnapshotState out =
      persist::decode_snapshot(persist::encode_snapshot(s));
  EXPECT_EQ(out.seq, s.seq);
  EXPECT_EQ(out.lsdb_version, s.lsdb_version);
  EXPECT_EQ(out.num_edges, s.num_edges);
  ASSERT_EQ(out.links.size(), 2u);
  EXPECT_EQ(out.links[0].edge, 3u);
  EXPECT_TRUE(out.links[0].down);
  EXPECT_EQ(out.links[0].generation, 5u);
  ASSERT_EQ(out.demands.size(), 1u);
  EXPECT_EQ(out.demands[0].stamp, 13u);
  EXPECT_EQ(out.demands[0].route.offset, 0u);
  EXPECT_EQ(out.demands[0].route.len, 3u);
  EXPECT_EQ(out.arena_nodes, s.arena_nodes);
  EXPECT_EQ(out.arena_edges, s.arena_edges);
}

TEST(PersistFormat, WalRoundTripsExactly) {
  std::vector<std::uint8_t> bytes = persist::encode_wal_header(9);
  persist::WalRecord fec;
  fec.type = persist::WalType::kFecInstall;
  fec.fec.demand = 4;
  fec.fec.stamp = 77;
  fec.fec.nodes = {1, 5, 9};
  fec.fec.edges = {2, 6};
  for (const persist::WalRecord& r :
       {link_record(2, false, 3), fec, link_record(2, true, 4)}) {
    const std::vector<std::uint8_t> enc = persist::encode_wal_record(r);
    bytes.insert(bytes.end(), enc.begin(), enc.end());
  }
  const persist::WalScan scan = persist::scan_wal(bytes);
  EXPECT_EQ(scan.snapshot_seq, 9u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].link.edge, 2u);
  EXPECT_FALSE(scan.records[0].link.up);
  EXPECT_EQ(scan.records[1].fec.demand, 4u);
  EXPECT_EQ(scan.records[1].fec.stamp, 77u);
  EXPECT_EQ(scan.records[1].fec.nodes, (std::vector<std::uint32_t>{1, 5, 9}));
  EXPECT_EQ(scan.records[1].fec.edges, (std::vector<std::uint32_t>{2, 6}));
  EXPECT_TRUE(scan.records[2].link.up);
}

}  // namespace
}  // namespace rbpc::service
