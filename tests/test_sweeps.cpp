// Parameterized cross-topology sweeps: the paper's key empirical claims
// checked as properties on every generator family, plus end-to-end
// controller sweeps.
#include <gtest/gtest.h>

#include <string>

#include "core/base_set.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "core/restoration.hpp"
#include "core/scenario.hpp"
#include "graph/analysis.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

/// Named topology factory for the sweeps.
struct TopoCase {
  std::string name;
  Graph (*make)(Rng& rng);
  spf::Metric metric;
};

Graph make_isp(Rng& rng) { return topo::make_isp_like(rng); }
Graph make_as_small(Rng& rng) { return topo::make_as_like(rng, 0.05); }
Graph make_waxman_t(Rng& rng) { return topo::make_waxman(120, 0.7, 0.25, rng); }
Graph make_mesh(Rng& rng) {
  return topo::make_random_connected(80, 200, rng, 12);
}
Graph make_grid_t(Rng& rng) {
  (void)rng;
  return topo::make_grid(9, 9);
}

const TopoCase kTopoCases[] = {
    {"isp", make_isp, spf::Metric::Weighted},
    {"as", make_as_small, spf::Metric::Hops},
    {"waxman", make_waxman_t, spf::Metric::Hops},
    {"mesh", make_mesh, spf::Metric::Weighted},
    {"grid", make_grid_t, spf::Metric::Hops},
};

class TopologySweep : public ::testing::TestWithParam<TopoCase> {};

// Table-2-style invariants hold on every topology family.
TEST_P(TopologySweep, SingleFailurePcLengthStaysNearTwo) {
  const TopoCase& tc = GetParam();
  Rng rng(11);
  const Graph g = tc.make(rng);
  Table2Config cfg;
  cfg.samples = 25;
  cfg.seed = 13;
  cfg.metric = tc.metric;
  const Table2Row row = run_table2(g, FailureClass::OneLink, cfg);
  if (row.restored == 0) GTEST_SKIP() << "no restorable cases";
  // The paper's headline: around two base paths per restoration; the
  // theorems cap single-failure cases at 2 paths + 1 edge.
  EXPECT_GE(row.avg_pc_length, 1.0);
  EXPECT_LE(row.avg_pc_length, 2.6) << tc.name;
  EXPECT_LE(row.max_pc_length, 3u) << tc.name;
  EXPECT_GE(row.length_stretch, 1.0) << tc.name;
}

TEST_P(TopologySweep, RestorationIsAlwaysOptimalAndCovered) {
  const TopoCase& tc = GetParam();
  Rng rng(17);
  const Graph g = tc.make(rng);
  spf::DistanceOracle oracle(g, FailureMask{}, tc.metric, 64);
  CanonicalBaseSet base(oracle);
  Rng sample_rng(19);
  int evaluated = 0;
  for (int trial = 0; trial < 40 && evaluated < 25; ++trial) {
    const SamplePair pair = sample_pair(oracle, sample_rng);
    for (const auto& sc :
         scenarios_for(pair, FailureClass::OneLink, sample_rng, 4)) {
      const Restoration r = source_rbpc_restore(base, pair.src, pair.dst,
                                                sc.mask);
      const auto want = spf::distance(g, pair.src, pair.dst, sc.mask,
                                      spf::SpfOptions{.metric = tc.metric});
      if (want == graph::kUnreachable) {
        EXPECT_FALSE(r.restored());
        continue;
      }
      ++evaluated;
      ASSERT_TRUE(r.restored());
      // Restoration quality is never compromised: the backup is min-cost.
      graph::Weight cost = 0;
      for (auto e : r.backup.edges()) {
        cost += spf::metric_weight(g, e, tc.metric);
      }
      EXPECT_EQ(cost, want) << tc.name;
      // And the decomposition reassembles it exactly from surviving pieces.
      EXPECT_EQ(r.decomposition.joined(), r.backup);
      for (const auto& piece : r.decomposition.pieces) {
        EXPECT_TRUE(piece.alive(g, sc.mask));
      }
    }
  }
  EXPECT_GT(evaluated, 0);
}

TEST_P(TopologySweep, BypassDistributionIsShortTailed) {
  const TopoCase& tc = GetParam();
  Rng rng(23);
  const Graph g = tc.make(rng);
  Table3Config cfg;
  cfg.metric = tc.metric;
  cfg.max_links = 300;
  cfg.seed = 29;
  const Table3Result res = run_table3(g, cfg);
  if (res.hopcount.empty()) GTEST_SKIP();
  // The paper's consequence: bypasses are overwhelmingly short. Grids are
  // the worst of our families (no triangles, bypass = 3); everything stays
  // within a small constant.
  std::uint64_t within5 = 0;
  for (std::int64_t h = 1; h <= 5; ++h) within5 += res.hopcount.count(h);
  EXPECT_GT(static_cast<double>(within5) /
                static_cast<double>(res.hopcount.total()),
            0.6)
      << tc.name;
}

INSTANTIATE_TEST_SUITE_P(Families, TopologySweep,
                         ::testing::ValuesIn(kTopoCases),
                         [](const ::testing::TestParamInfo<TopoCase>& info) {
                           return info.param.name;
                         });

// End-to-end controller sweep on medium topologies (kept separate from the
// per-case sweep to bound runtime: provisioning is O(n^2)).
TEST(ControllerSweep, WaxmanEndToEnd) {
  Rng rng(31);
  const Graph g = topo::make_waxman(60, 0.7, 0.3, rng);
  RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();
  for (int round = 0; round < 3; ++round) {
    const auto e = static_cast<graph::EdgeId>(rng.below(g.num_edges()));
    if (ctl.failures().edge_failed(e)) continue;
    ctl.fail_link(e);
    for (int probe = 0; probe < 60; ++probe) {
      const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
      const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
      if (s == t) continue;
      const auto r = ctl.send(s, t);
      const auto want =
          spf::distance(g, s, t, ctl.failures(),
                        spf::SpfOptions{.metric = spf::Metric::Hops});
      if (want == graph::kUnreachable) {
        EXPECT_FALSE(r.delivered());
      } else {
        ASSERT_TRUE(r.delivered()) << s << "->" << t;
        EXPECT_EQ(static_cast<graph::Weight>(r.hops), want);
      }
    }
    ctl.recover_link(e);
  }
}

}  // namespace
}  // namespace rbpc::core
