// Concurrency test harness for the always-on restoration service
// (src/service): epoch reclamation, the bounded MPMC queue, the sharded
// LSDB, the thread-safe EventQueue cancel path, and the service itself.
//
// Two regimes, per the harness design:
//
//  * deterministic-mode equivalence — every corpus topology gets a seeded
//    chaos storm (losses, jitter reordering, duplicates, flaps); the
//    service ingests the perturbed stream, quiesces, and its FEC table
//    must be *bit-identical* (backup path, decomposition pieces, piece
//    kinds) to a serial source_rbpc_restore replay of the final mask. The
//    interleaving-independence matrix re-runs fixed-seed storms across
//    {1,2,8} workers x {1,4} shards and requires identical quiescent
//    tables from every configuration.
//
//  * free-running stress — concurrent ingest threads, reroute workers and
//    a scraping thread race without any schedule; chaos invariants are
//    asserted during churn (snapshot versions monotone, readers never
//    crash or see torn shard state) and after quiescence (view == truth,
//    FEC table == serial replay).
//
// This file is built standalone (rbpc_add_test) so CI runs it under
// ThreadSanitizer and ASan/UBSan.
#include <gtest/gtest.h>

#include "corpus.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "chaos/fault_plan.hpp"
#include "chaos/storm.hpp"
#include "core/base_set.hpp"
#include "core/restoration.hpp"
#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "lsdb/event_queue.hpp"
#include "lsdb/lsdb.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "service/epoch.hpp"
#include "service/mpmc_queue.hpp"
#include "service/service.hpp"
#include "service/sharded_lsdb.hpp"
#include "spf/oracle.hpp"
#include "util/rng.hpp"

namespace rbpc::service {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using rbpc::testing::TopoCase;
using rbpc::testing::corpus;

// ---------------------------------------------------------------------------
// Epoch reclamation.
// ---------------------------------------------------------------------------

TEST(EpochReclamation, PinnedReaderBlocksReclaim) {
  EpochManager mgr;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> alive = obj;

  EpochManager::Guard reader = mgr.pin();
  mgr.retire(std::move(obj));
  // The reader pinned an epoch <= the retire epoch: nothing reclaimable.
  EXPECT_EQ(mgr.try_reclaim(), 0u);
  EXPECT_EQ(mgr.limbo_size(), 1u);
  EXPECT_FALSE(alive.expired());

  reader.release();
  EXPECT_EQ(mgr.try_reclaim(), 1u);
  EXPECT_EQ(mgr.limbo_size(), 0u);
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(mgr.reclaimed(), 1u);
}

TEST(EpochReclamation, LateReaderDoesNotBlockEarlierRetire) {
  EpochManager mgr;
  auto obj = std::make_shared<int>(1);
  std::weak_ptr<int> alive = obj;
  // retire() advances the epoch and reclaims opportunistically: with no
  // reader pinned the object dies right away.
  mgr.retire(std::move(obj));
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(mgr.reclaimed(), 1u);
  // A reader pinning *after* the advance can never reach old objects and
  // never blocks subsequent reclamation of pre-pin retirees.
  EpochManager::Guard reader = mgr.pin();
  auto obj2 = std::make_shared<int>(2);
  std::weak_ptr<int> alive2 = obj2;
  mgr.retire(std::move(obj2));
  EXPECT_FALSE(alive2.expired()) << "reader pinned <= retire epoch";
  reader.release();
  EXPECT_EQ(mgr.try_reclaim(), 1u);
  EXPECT_TRUE(alive2.expired());
}

TEST(EpochReclamation, GuardReleasesExactlyOnce) {
  EpochManager mgr;
  EpochManager::Guard g1 = mgr.pin();
  const std::uint64_t pinned = g1.epoch();
  EXPECT_TRUE(g1.active());
  EXPECT_EQ(mgr.min_pinned(), pinned);

  g1.release();
  EXPECT_FALSE(g1.active());
  EXPECT_EQ(mgr.min_pinned(), std::numeric_limits<std::uint64_t>::max());
  g1.release();  // idempotent: must not free another reader's slot
  EXPECT_EQ(mgr.min_pinned(), std::numeric_limits<std::uint64_t>::max());

  // Moved-from guards are inert; the moved-to guard owns the single unpin.
  EpochManager::Guard g2 = mgr.pin();
  EpochManager::Guard g3 = std::move(g2);
  EXPECT_FALSE(g2.active());  // NOLINT(bugprone-use-after-move): contract
  EXPECT_TRUE(g3.active());
  g2.release();  // releasing the husk must not unpin g3's slot
  EXPECT_NE(mgr.min_pinned(), std::numeric_limits<std::uint64_t>::max());
  g3.release();
  EXPECT_EQ(mgr.min_pinned(), std::numeric_limits<std::uint64_t>::max());
}

TEST(EpochReclamation, ConcurrentPinRetireStress) {
  EpochManager mgr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  // Readers continuously pin/unpin; writers retire live objects. TSan
  // verifies the slot CAS protocol; the weak_ptr sampling verifies no
  // object dies while a guard taken before its retirement is live.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Guard g = mgr.pin();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  constexpr int kRetires = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kRetires; ++i) {
        mgr.retire(std::make_shared<int>(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // With every guard dropped, everything still in limbo is reclaimable.
  mgr.retire(std::make_shared<int>(-1));
  mgr.try_reclaim();
  EXPECT_EQ(mgr.limbo_size(), 0u);
  EXPECT_EQ(mgr.reclaimed(), static_cast<std::uint64_t>(2 * kRetires + 1));
  EXPECT_GT(reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Bounded MPMC queue.
// ---------------------------------------------------------------------------

TEST(MpmcQueue, CapacityAndFifoSingleThreaded) {
  MpmcQueue<int> q(3);  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(q.pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99)) << "push into a full queue must fail";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i) << "single-threaded order must be FIFO";
  }
  EXPECT_FALSE(q.pop(out));
}

TEST(MpmcQueue, CloseRejectsPushesButDrains) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));
}

TEST(MpmcQueue, ConcurrentFullEmptyRaces) {
  // Small ring so both the full and the empty edge are hit constantly.
  MpmcQueue<std::uint64_t> q(8);
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;

  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!q.push(v)) std::this_thread::yield();
      }
    });
  }
  constexpr std::uint64_t kTotal = kPerProducer * kProducers;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      while (popped_count.load(std::memory_order_relaxed) < kTotal) {
        if (q.pop(v)) {
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(popped_count.load(), kTotal);
  EXPECT_EQ(popped_sum.load(), kTotal * (kTotal - 1) / 2)
      << "every pushed value must be popped exactly once";
}

TEST(MpmcQueue, ShutdownWithInflightProducers) {
  MpmcQueue<int> q(16);
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<bool> closed{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      // Push until the queue is closed; a failed push on a *full* open
      // queue retries, a failed push after close gives up.
      while (!closed.load(std::memory_order_acquire)) {
        if (q.push(1)) {
          pushed.fetch_add(1, std::memory_order_relaxed);
        } else if (q.closed()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  // Let producers race the close.
  std::uint64_t drained = 0;
  int out = 0;
  while (pushed.load(std::memory_order_relaxed) < 200) {
    if (q.pop(out)) ++drained;
  }
  q.close();
  closed.store(true, std::memory_order_release);
  for (std::thread& t : producers) t.join();
  // Post-join drain: exactly the successful pushes come back out.
  while (q.pop(out)) ++drained;
  EXPECT_EQ(drained, pushed.load());
  EXPECT_FALSE(q.push(7)) << "closed queue must reject new work";
}

// ---------------------------------------------------------------------------
// Sharded LSDB.
// ---------------------------------------------------------------------------

TEST(ShardedLsdb, GenerationGatingMirrorsLsdb) {
  // A perturbed event sequence (dups, stale reordering) must leave the
  // sharded view, the classic Lsdb, and their discard counters identical —
  // for any shard count.
  constexpr std::size_t kEdges = 10;
  Rng rng(77);
  std::vector<lsdb::LinkEvent> events;
  std::vector<std::uint64_t> gen(kEdges, 0);
  for (int i = 0; i < 300; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.below(kEdges));
    lsdb::LinkEvent ev{e, rng.chance(0.5), 0};
    const double kind = rng.uniform();
    if (kind < 0.6) {
      ev.generation = ++gen[e];           // fresh
    } else if (kind < 0.8 && gen[e] > 0) {
      ev.generation = gen[e];             // duplicate
    } else if (gen[e] > 1) {
      ev.generation = 1 + rng.below(gen[e] - 1);  // stale
    } else {
      ev.generation = ++gen[e];
    }
    events.push_back(ev);
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    lsdb::Lsdb reference;
    ShardedLsdb sharded(kEdges, shards);
    for (const lsdb::LinkEvent& ev : events) {
      EXPECT_EQ(reference.apply(ev), sharded.apply(ev))
          << "shards=" << shards << " edge=" << ev.edge
          << " gen=" << ev.generation;
    }
    EXPECT_EQ(sharded.duplicates_discarded(), reference.duplicates_discarded());
    EXPECT_EQ(sharded.stale_discarded(), reference.stale_discarded());
    const ShardedLsdb::Snapshot snap = sharded.snapshot();
    for (EdgeId e = 0; e < kEdges; ++e) {
      EXPECT_EQ(snap.edge_failed(e), reference.knows_down(e))
          << "shards=" << shards << " edge=" << e;
      EXPECT_EQ(snap.generation(e), reference.applied_generation(e));
    }
  }
}

TEST(ShardedLsdb, SnapshotPinsBlockReclamationUntilDropped) {
  ShardedLsdb db(4, 2);
  ASSERT_TRUE(db.apply({0, false, 1}));
  auto held = std::make_unique<ShardedLsdb::Snapshot>(db.snapshot());
  EXPECT_FALSE(held->edge_failed(1));
  // Writes behind the pinned snapshot park the old shard states in limbo.
  ASSERT_TRUE(db.apply({1, false, 1}));
  ASSERT_TRUE(db.apply({1, true, 2}));
  EXPECT_GT(db.epochs().limbo_size(), 0u);
  EXPECT_FALSE(held->edge_failed(1)) << "pinned snapshot must stay immutable";
  EXPECT_EQ(held->version(), 1u);

  held.reset();  // unpin
  db.epochs().try_reclaim();
  EXPECT_EQ(db.epochs().limbo_size(), 0u);
  const ShardedLsdb::Snapshot fresh = db.snapshot();
  EXPECT_TRUE(fresh.edge_failed(0));
  EXPECT_FALSE(fresh.edge_failed(1));
  EXPECT_EQ(fresh.version(), 3u);
}

TEST(ShardedLsdb, ConcurrentApplySnapshotStress) {
  constexpr std::size_t kEdges = 32;
  ShardedLsdb db(kEdges, 4);
  std::atomic<bool> stop{false};

  // Writers: disjoint edge ranges so per-edge generations stay monotone.
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t g = 1; g <= 400; ++g) {
        for (std::size_t e = static_cast<std::size_t>(w) * kEdges / 2;
             e < static_cast<std::size_t>(w + 1) * kEdges / 2; ++e) {
          db.apply({static_cast<EdgeId>(e), g % 2 == 0, g});
        }
      }
    });
  }
  // Readers: versions must be monotone, generations never regress within
  // one snapshot relative to an earlier snapshot of the same thread.
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      std::uint64_t last_version = 0;
      std::vector<std::uint64_t> last_gen(kEdges, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        const ShardedLsdb::Snapshot snap = db.snapshot();
        const std::uint64_t v = snap.version();
        ASSERT_GE(v, last_version) << "snapshot versions must be monotone";
        last_version = v;
        for (EdgeId e = 0; e < kEdges; ++e) {
          const std::uint64_t g = snap.generation(e);
          ASSERT_GE(g, last_gen[e]) << "edge generation went backwards";
          last_gen[e] = g;
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();

  const ShardedLsdb::Snapshot final_snap = db.snapshot();
  EXPECT_EQ(final_snap.version(), static_cast<std::uint64_t>(400 * kEdges));
  for (EdgeId e = 0; e < kEdges; ++e) {
    EXPECT_EQ(final_snap.generation(e), 400u);
    EXPECT_FALSE(final_snap.edge_failed(e));  // generation 400 is an up
  }
}

// ---------------------------------------------------------------------------
// EventQueue: concurrent cancel vs fire.
// ---------------------------------------------------------------------------

TEST(EventQueueRace, CancelAndFireAreExclusive) {
  // The regression this pins down: cancel() used to mutate the live set
  // unsynchronized with step(), so a token could be "successfully"
  // cancelled after its callback started (or corrupt the sets outright).
  // Contract now: cancel() == true  <=>  the callback never runs.
  constexpr int kEvents = 2000;
  lsdb::EventQueue q;
  std::vector<std::atomic<char>> fired(kEvents);
  for (auto& f : fired) f.store(0, std::memory_order_relaxed);
  std::vector<lsdb::EventToken> tokens;
  tokens.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    tokens.push_back(q.schedule(static_cast<double>(i % 7), [&fired, i] {
      fired[i].store(1, std::memory_order_relaxed);
    }));
  }

  std::vector<std::atomic<char>> cancelled(kEvents);
  for (auto& c : cancelled) c.store(0, std::memory_order_relaxed);
  std::thread runner([&] { q.run_all(); });
  std::vector<std::thread> cancellers;
  for (int c = 0; c < 3; ++c) {
    cancellers.emplace_back([&, c] {
      // Each canceller sweeps a stride of tokens while the runner drains.
      for (int i = c; i < kEvents; i += 3) {
        if (q.cancel(tokens[i])) {
          cancelled[i].store(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : cancellers) t.join();
  runner.join();
  q.run_all();  // events cancelled after the first drain finished: none left

  int fired_count = 0;
  for (int i = 0; i < kEvents; ++i) {
    const bool f = fired[i].load(std::memory_order_relaxed) != 0;
    const bool k = cancelled[i].load(std::memory_order_relaxed) != 0;
    EXPECT_NE(f, k) << "event " << i
                    << (f && k ? " both fired and cancelled"
                               : " neither fired nor cancelled");
    fired_count += f ? 1 : 0;
  }
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.cancelled_pending(), 0u);
  // Sanity: cancel after the fact is a no-op returning false.
  EXPECT_FALSE(q.cancel(tokens[0]));
  (void)fired_count;
}

TEST(EventQueueRace, CallbacksMayScheduleAndCancelReentrantly) {
  lsdb::EventQueue q;
  int ran = 0;
  lsdb::EventToken victim = 0;
  q.schedule(1.0, [&] {
    ++ran;
    victim = q.schedule(5.0, [&] { ran += 100; });
    q.schedule(2.0, [&] {
      ++ran;
      EXPECT_TRUE(q.cancel(victim));
    });
  });
  q.run_all();
  EXPECT_EQ(ran, 2) << "the cancelled reentrant event must not fire";
}

// ---------------------------------------------------------------------------
// Service equivalence harness.
// ---------------------------------------------------------------------------

std::vector<Demand> random_demands(const Graph& g, std::size_t count,
                                   Rng& rng) {
  std::vector<Demand> demands;
  while (demands.size() < count) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    demands.push_back(Demand{s, t});
  }
  return demands;
}

/// The ground truth: a serial source-RBPC restoration of every demand
/// against the final mask, exactly as the drill engines would compute it.
std::vector<core::Restoration> serial_replay(const Graph& g,
                                             spf::Metric metric,
                                             const std::vector<Demand>& demands,
                                             const FailureMask& mask) {
  spf::DistanceOracle oracle(g, FailureMask{}, metric);
  core::CanonicalBaseSet base(oracle);
  std::vector<core::Restoration> out;
  out.reserve(demands.size());
  for (const Demand& d : demands) {
    out.push_back(core::source_rbpc_restore(base, d.src, d.dst, mask));
  }
  return out;
}

void expect_identical_tables(const std::vector<core::Restoration>& want,
                             const std::vector<core::Restoration>& got,
                             const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const std::string ctx = context + " demand " + std::to_string(i);
    EXPECT_EQ(want[i].backup, got[i].backup) << ctx << ": backup differs";
    EXPECT_EQ(want[i].decomposition, got[i].decomposition)
        << ctx << ": decomposition differs";
  }
}

chaos::StormConfig storm_config() {
  chaos::StormConfig config;
  config.events = 14;
  config.max_concurrent = 3;
  config.faults.lsa_loss = 0.2;
  config.faults.lsa_jitter = 6.0;
  config.faults.lsa_dup = 0.2;
  config.faults.detect_jitter = 1.0;
  config.faults.miss_detect = 0.1;
  config.faults.flap_count = 1;
  return config;
}

/// Ingests the full delivery stream (already time-sorted) and quiesces.
void ingest_all(RestorationService& svc,
                const std::vector<chaos::StormEvent>& deliveries) {
  for (const chaos::StormEvent& d : deliveries) svc.ingest(d.event);
  svc.quiesce();
}

void expect_view_matches_truth(const RestorationService& svc,
                               const chaos::Storm& storm,
                               const std::string& context) {
  const FailureMask truth = storm.final_mask();
  const std::vector<std::uint64_t> gens =
      storm.final_generations(svc.graph().num_edges());
  const ShardedLsdb::Snapshot view = svc.lsdb().snapshot();
  for (EdgeId e = 0; e < svc.graph().num_edges(); ++e) {
    EXPECT_EQ(view.edge_failed(e), truth.edge_failed(e))
        << context << ": view != truth for edge " << e;
    EXPECT_EQ(view.generation(e), gens[e])
        << context << ": generation mismatch for edge " << e;
  }
}

TEST(ServiceEquivalence, QuiescentTablesMatchSerialReplayAcrossCorpus) {
  const std::vector<TopoCase> cases = corpus();
  ASSERT_GE(cases.size(), 54u);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Graph& g = cases[ci].g;
    Rng rng(9000 + ci);
    const std::vector<Demand> demands = random_demands(g, 8, rng);
    const chaos::Storm storm = chaos::plan_storm(g, storm_config(), rng);

    ServiceOptions options;
    options.shards = 4;
    options.workers = 4;
    RestorationService svc(g, demands, options);
    ingest_all(svc, storm.deliveries);

    expect_view_matches_truth(svc, storm, cases[ci].name);
    expect_identical_tables(
        serial_replay(g, options.metric, demands, storm.final_mask()),
        svc.routes(), cases[ci].name);
    svc.stop();
  }
}

TEST(ServiceEquivalence, NoEventsKeepsProvisionedBaselines) {
  const Graph g = testing::make_wheel16();
  Rng rng(1);
  const std::vector<Demand> demands = random_demands(g, 10, rng);
  RestorationService svc(g, demands);
  svc.quiesce();
  expect_identical_tables(
      serial_replay(g, ServiceOptions{}.metric, demands, FailureMask{}),
      svc.routes(), "baseline");
  for (std::size_t d = 0; d < demands.size(); ++d) {
    EXPECT_FALSE(svc.dirty(d));
  }
}

TEST(ServiceEquivalence, OverloadDefersButStillConverges) {
  // A two-slot queue under a hub storm forces the queue-full rung of the
  // degradation ladder; deferred demands must still converge at quiesce.
  const Graph g = testing::make_wheel16();
  Rng rng(42);
  const std::vector<Demand> demands = random_demands(g, 24, rng);
  chaos::StormConfig config = storm_config();
  config.events = 20;
  const chaos::Storm storm = chaos::plan_storm(g, config, rng);

  ServiceOptions options;
  options.queue_capacity = 2;
  options.workers = 2;
  RestorationService svc(g, demands, options);
  ingest_all(svc, storm.deliveries);

  expect_identical_tables(
      serial_replay(g, options.metric, demands, storm.final_mask()),
      svc.routes(), "overload");
  const ServiceStats stats = svc.stats();
  EXPECT_GT(stats.reroutes, 0u);
}

// ---------------------------------------------------------------------------
// Interleaving independence: fixed seed, any worker/shard count -> same
// quiescent FEC tables. 20 seeds x {1,2,8} workers x {1,4} shards.
// ---------------------------------------------------------------------------

TEST(ServiceProperty, InterleavingIndependenceMatrix) {
  const Graph g = topo::make_grid(4, 5);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng scenario_rng(5000 + seed);
    const std::vector<Demand> demands = random_demands(g, 10, scenario_rng);
    const chaos::Storm storm =
        chaos::plan_storm(g, storm_config(), scenario_rng);
    const std::vector<core::Restoration> want = serial_replay(
        g, ServiceOptions{}.metric, demands, storm.final_mask());

    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        ServiceOptions options;
        options.workers = workers;
        options.shards = shards;
        RestorationService svc(g, demands, options);
        ingest_all(svc, storm.deliveries);
        expect_identical_tables(
            want, svc.routes(),
            "seed " + std::to_string(seed) + " workers " +
                std::to_string(workers) + " shards " + std::to_string(shards));
        svc.stop();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Free-running stress: ingest threads + reroute workers + a scraper, no
// schedule, all invariants asserted live. The TSan CI job runs this.
// ---------------------------------------------------------------------------

TEST(ServiceStress, LadderEscalationDumpsFlightRecorder) {
  if (!obs::kObsEnabled) {
    GTEST_SKIP() << "request tracing disabled in this build";
  }
  const Graph g = [] {
    Rng rng(3007);
    return topo::make_barabasi_albert(24, 2, 0.3, rng, 0.4);
  }();
  Rng rng(778);
  const std::vector<Demand> demands = random_demands(g, 48, rng);
  chaos::StormConfig config = storm_config();
  config.events = 24;
  const chaos::Storm storm = chaos::plan_storm(g, config, rng);

  const std::string dump_path =
      ::testing::TempDir() + "rbpc_flight_escalation.json";
  std::remove(dump_path.c_str());
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;  // force queue-full stale-FEC deferrals
  options.flight_dump_path = dump_path;
  RestorationService svc(g, demands, options);
  for (const chaos::StormEvent& d : storm.deliveries) svc.ingest(d.event);
  svc.quiesce();
  const ServiceStats stats = svc.stats();
  svc.stop();

  // 48 demands funneled through a 2-deep queue: bursts must have deferred.
  ASSERT_GT(stats.deferred, 0u);
  // The first escalation past scratch SPF dumps the flight recorder once.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.is_open()) << "no flight dump at " << dump_path;
  const std::string dump((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("queue-full deferral"), std::string::npos);
  EXPECT_NE(dump.find("\"request_id\""), std::string::npos);
  EXPECT_NE(dump.find("stale-fec"), std::string::npos);
  std::remove(dump_path.c_str());
}

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (headers + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ServiceStress, FreeRunningChurnWithConcurrentScraper) {
  const Graph g = [] {
    Rng rng(3005);
    return topo::make_barabasi_albert(21, 2, 0.3, rng, 0.4);
  }();
  Rng rng(777);
  const std::vector<Demand> demands = random_demands(g, 16, rng);
  chaos::StormConfig config = storm_config();
  config.events = 24;
  const chaos::Storm storm = chaos::plan_storm(g, config, rng);

  ServiceOptions options;
  options.workers = 4;
  options.shards = 4;
  options.queue_capacity = 8;  // small: exercise the deferred path too
  options.serve_metrics = true;  // scrape through the live endpoint too
  RestorationService svc(g, demands, options);
  ASSERT_NE(svc.metrics_port(), 0);

  // Split the stream between two ingest threads. Each thread preserves its
  // slice's order; the cross-thread interleaving is whatever the scheduler
  // does. Generation gating makes the quiescent view order-independent.
  std::vector<chaos::StormEvent> even, odd;
  for (std::size_t i = 0; i < storm.deliveries.size(); ++i) {
    (i % 2 == 0 ? even : odd).push_back(storm.deliveries[i]);
  }
  std::atomic<bool> churn_done{false};
  std::thread scraper([&] {
    // Chaos invariant during churn: snapshot versions are monotone and a
    // pinned view is coherent (readable end to end) while writers publish.
    std::uint64_t last_version = 0;
    std::uint64_t observations = 0;
    while (!churn_done.load(std::memory_order_acquire)) {
      const ShardedLsdb::Snapshot snap = svc.lsdb().snapshot();
      ASSERT_GE(snap.version(), last_version);
      last_version = snap.version();
      FailureMask mask = snap.to_mask();
      ASSERT_LE(mask.failed_edge_count(), g.num_edges());
      const std::vector<core::Restoration> routes = svc.routes();
      ASSERT_EQ(routes.size(), demands.size());
      (void)svc.stats();
      ++observations;
    }
    EXPECT_GT(observations, 0u);
  });
  std::thread http_scraper([&] {
    // Same races as the in-process scraper, but through the exposition
    // server: the full scrape path (registry shards, flight-recorder
    // seqlock rings, HTTP framing) must stay coherent while workers
    // publish. Runs under TSan in CI like the rest of this binary.
    std::uint64_t ok = 0;
    while (!churn_done.load(std::memory_order_acquire)) {
      const std::string resp = http_get(svc.metrics_port(), "/metrics");
      if (!resp.empty()) {
        ASSERT_NE(resp.find("200 OK"), std::string::npos);
        ++ok;
      }
      (void)http_get(svc.metrics_port(), "/flight");
    }
    EXPECT_GT(ok, 0u);
  });
  std::thread ingest_a([&] {
    for (const chaos::StormEvent& d : even) svc.ingest(d.event);
  });
  std::thread ingest_b([&] {
    for (const chaos::StormEvent& d : odd) svc.ingest(d.event);
  });
  ingest_a.join();
  ingest_b.join();
  svc.quiesce();
  churn_done.store(true, std::memory_order_release);
  scraper.join();
  http_scraper.join();

  // Post-quiescence chaos invariants: view == truth, table == serial.
  expect_view_matches_truth(svc, storm, "stress");
  expect_identical_tables(
      serial_replay(g, options.metric, demands, storm.final_mask()),
      svc.routes(), "stress");
  const ServiceStats stats = svc.stats();
  EXPECT_GT(stats.reroutes, 0u);
  EXPECT_EQ(stats.events_applied + stats.events_discarded,
            storm.deliveries.size());

  if (obs::kObsEnabled) {
    // Request-trace lifecycle: every flight-recorder record carries a live
    // request id and a rung from the degradation ladder, and its stage
    // timestamps are causally ordered.
    const std::vector<obs::RerouteRecord> records =
        svc.flight_recorder().collect();
    ASSERT_FALSE(records.empty());
    for (const obs::RerouteRecord& rec : records) {
      EXPECT_NE(rec.request_id, 0u);
      EXPECT_LE(rec.rung, static_cast<std::uint8_t>(obs::Rung::kNoRoute));
      if (rec.rung != static_cast<std::uint8_t>(obs::Rung::kStaleFec)) {
        EXPECT_LE(rec.start_ns, rec.done_ns);
        EXPECT_LE(rec.snapshot_ns, rec.spf_ns);
        EXPECT_LE(rec.spf_ns, rec.decompose_ns);
      }
    }
    // ServiceStats and the registry agree: stats() reads the same
    // InstanceCounters that mirror into the global registry, so the
    // process-wide counter can only be >= this instance's share.
    EXPECT_GE(obs::MetricsRegistry::global().counter("svc.reroutes").value(),
              stats.reroutes);
    EXPECT_GE(obs::MetricsRegistry::global().counter("svc.deferred").value(),
              stats.deferred);
    // And the endpoint serves the same families a Prometheus scraper needs.
    const std::string final_scrape = http_get(svc.metrics_port(), "/metrics");
    EXPECT_NE(final_scrape.find("svc_reroutes_total"), std::string::npos);
    EXPECT_NE(final_scrape.find("svc_restore_latency_bucket"),
              std::string::npos);
  }
  svc.stop();
}

// ---------------------------------------------------------------------------
// Deferred-set backoff policy (service/backoff.hpp).
// ---------------------------------------------------------------------------

TEST(BackoffTest, FirstDelayIsExactlyBase) {
  BackoffPolicy policy;
  std::uint64_t rng = 0;
  // prev == 0: the window [base, max(base, 0*mult)] collapses to {base}.
  EXPECT_EQ(next_backoff_us(0, policy, rng), policy.base_us);
}

TEST(BackoffTest, EveryDelayStaysWithinBaseAndCap) {
  BackoffPolicy policy;
  policy.base_us = 50;
  policy.cap_us = 4000;
  std::uint64_t rng = 0;
  std::uint64_t prev = 0;
  for (int i = 0; i < 10000; ++i) {
    prev = next_backoff_us(prev, policy, rng);
    ASSERT_GE(prev, policy.base_us);
    ASSERT_LE(prev, policy.cap_us);
  }
}

TEST(BackoffTest, DegeneratePoliciesAreClamped) {
  BackoffPolicy zero;
  zero.base_us = 0;
  zero.cap_us = 0;
  std::uint64_t rng = 0;
  // base clamps to 1, cap clamps to base: always exactly 1us, never 0 (a
  // zero delay would spin) and never a divide-by-zero span.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(next_backoff_us(1 << 20, zero, rng), 1u);
  }
  BackoffPolicy inverted;
  inverted.base_us = 500;
  inverted.cap_us = 10;  // cap below base: clamped up to base
  EXPECT_EQ(next_backoff_us(0, inverted, rng), 500u);
}

TEST(BackoffTest, DecorrelatedStreamsDiverge) {
  // Two loops entering overload at the same instant must not retry in
  // lockstep — different PRNG states yield different delay sequences.
  BackoffPolicy policy;
  std::uint64_t rng_a = 1;
  std::uint64_t rng_b = 2;
  std::uint64_t prev_a = policy.base_us;
  std::uint64_t prev_b = policy.base_us;
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    prev_a = next_backoff_us(prev_a, policy, rng_a);
    prev_b = next_backoff_us(prev_b, policy, rng_b);
    diverged = prev_a != prev_b;
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, OverloadedServiceBacksOffAndStillConverges) {
  // Same shape as OverloadDefersButStillConverges but with a tiny backoff
  // window, verifying the pacing path (svc.defer.backoff metrics + the
  // force-drain in quiesce) never costs convergence.
  const Graph g = testing::make_wheel16();
  Rng rng(43);
  const std::vector<Demand> demands = random_demands(g, 24, rng);
  chaos::StormConfig config = storm_config();
  config.events = 20;
  const chaos::Storm storm = chaos::plan_storm(g, config, rng);

  ServiceOptions options;
  options.queue_capacity = 2;
  options.workers = 2;
  options.defer_backoff.base_us = 20;
  options.defer_backoff.cap_us = 200;
  RestorationService svc(g, demands, options);
  ingest_all(svc, storm.deliveries);

  expect_identical_tables(
      serial_replay(g, options.metric, demands, storm.final_mask()),
      svc.routes(), "backoff overload");
  (void)svc.stats().backoff_waits;  // populated; nonzero only under overload
}

// ---------------------------------------------------------------------------
// Worker heartbeats (the service_churn watchdog's signal).
// ---------------------------------------------------------------------------

TEST(WorkerHeartbeat, EveryWorkerBeatsWhileIdleAndBusy) {
  const Graph g = testing::make_wheel16();
  Rng rng(44);
  const std::vector<Demand> demands = random_demands(g, 8, rng);
  ServiceOptions options;
  options.workers = 3;
  RestorationService svc(g, demands, options);
  ASSERT_EQ(svc.num_workers(), 3u);

  // Idle workers still beat (the heartbeat is fed on every loop pass, busy
  // or not) — poll until all three have a nonzero timestamp.
  for (int spin = 0; spin < 2000; ++spin) {
    bool all = true;
    for (std::size_t w = 0; w < svc.num_workers(); ++w) {
      all = all && svc.worker_heartbeat_ns(w) != 0;
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::vector<std::uint64_t> first;
  for (std::size_t w = 0; w < svc.num_workers(); ++w) {
    first.push_back(svc.worker_heartbeat_ns(w));
    ASSERT_NE(first.back(), 0u) << "worker " << w << " never beat";
  }

  // Heartbeats advance over time and never regress.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (std::size_t w = 0; w < svc.num_workers(); ++w) {
    EXPECT_GE(svc.worker_heartbeat_ns(w), first[w]) << "worker " << w;
  }
  svc.stop();
}

}  // namespace
}  // namespace rbpc::service
