// Differential tests for incremental SPT repair (spf/incremental.hpp) and
// the bounded TreeCache (spf/tree_cache.hpp).
//
// The contract under test is strict: repair_tree must be *bit-identical* to
// shortest_tree — same dist, same heap key, same hop count, same parent and
// parent edge for every node — on a 54-topology corpus (paper gadgets +
// three random families), under both metrics, padded and plain, 1-4 edge
// failures plus node failures, and on either side of the fallback
// threshold. Equal cost is not enough: the batch engine's determinism
// guarantee (byte-identical results at any thread count) rests on the
// repaired tree being indistinguishable from a from-scratch run.
#include <gtest/gtest.h>

#include "corpus.hpp"

#include <memory>
#include <string>
#include <vector>

#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "spf/incremental.hpp"
#include "spf/spf.hpp"
#include "spf/tree.hpp"
#include "spf/tree_cache.hpp"
#include "spf/workspace.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::spf {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

// The shared 54-topology corpus lives in corpus.hpp.
using rbpc::testing::TopoCase;
using rbpc::testing::corpus;

FailureMask random_edge_failures(const Graph& g, std::size_t k, Rng& rng) {
  FailureMask mask;
  for (auto e : rng.sample_distinct(g.num_edges(), k)) {
    mask.fail_edge(static_cast<EdgeId>(e));
  }
  return mask;
}

const std::vector<SpfOptions>& flavors() {
  static const std::vector<SpfOptions> kFlavors = {
      {.metric = Metric::Weighted, .padded = false},
      {.metric = Metric::Weighted, .padded = true},
      {.metric = Metric::Hops, .padded = false},
      {.metric = Metric::Hops, .padded = true},
  };
  return kFlavors;
}

std::string flavor_name(const SpfOptions& o) {
  return std::string(o.metric == Metric::Weighted ? "weighted" : "hops") +
         (o.padded ? "/padded" : "/plain");
}

// Field-by-field equality: dist AND key AND hops AND parent AND parent edge.
void expect_identical_trees(const ShortestPathTree& want,
                            const ShortestPathTree& got,
                            const std::string& ctx) {
  ASSERT_EQ(want.num_nodes(), got.num_nodes()) << ctx;
  EXPECT_EQ(want.source(), got.source()) << ctx;
  for (NodeId v = 0; v < want.num_nodes(); ++v) {
    const std::string at = ctx + " v=" + std::to_string(v);
    EXPECT_EQ(want.dist(v), got.dist(v)) << at;
    EXPECT_EQ(want.key(v), got.key(v)) << at;
    ASSERT_EQ(want.reachable(v), got.reachable(v)) << at;
    if (want.reachable(v)) {
      EXPECT_EQ(want.hops(v), got.hops(v)) << at;
      EXPECT_EQ(want.parent(v), got.parent(v)) << at;
      EXPECT_EQ(want.parent_edge(v), got.parent_edge(v)) << at;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential suite: repair == scratch, everywhere.
// ---------------------------------------------------------------------------

TEST(IncrementalRepair, MatchesScratchOnCorpusEdgeFailures) {
  SpfWorkspace ws;
  for (const TopoCase& tc : corpus()) {
    const Graph& g = tc.g;
    Rng rng(4000 + g.num_nodes());
    std::vector<FailureMask> masks;
    for (std::size_t k = 1; k <= 4 && k <= g.num_edges(); ++k) {
      masks.push_back(random_edge_failures(g, k, rng));
    }
    for (const SpfOptions& options : flavors()) {
      for (NodeId s = 0; s < g.num_nodes(); ++s) {
        const ShortestPathTree base =
            shortest_tree(g, s, FailureMask::none(), options);
        for (std::size_t mi = 0; mi < masks.size(); ++mi) {
          const FailureMask& mask = masks[mi];
          RepairReport report;
          const ShortestPathTree repaired = repair_tree(
              g, base, mask, options, ws, IncrementalOptions{}, &report);
          const ShortestPathTree scratch = shortest_tree(g, s, mask, options);
          expect_identical_trees(
              scratch, repaired,
              tc.name + " " + flavor_name(options) + " s=" + std::to_string(s) +
                  " k=" + std::to_string(mi + 1));
        }
      }
    }
  }
}

TEST(IncrementalRepair, MatchesScratchUnderNodeFailures) {
  SpfWorkspace ws;
  for (const TopoCase& tc : corpus()) {
    const Graph& g = tc.g;
    Rng rng(5000 + g.num_nodes());
    const SpfOptions options{.metric = Metric::Weighted, .padded = true};
    for (int trial = 0; trial < 3; ++trial) {
      FailureMask mask = random_edge_failures(g, 1 + trial % 2, rng);
      const NodeId down = static_cast<NodeId>(rng.below(g.num_nodes()));
      mask.fail_node(down);
      for (NodeId s = 0; s < g.num_nodes(); ++s) {
        const ShortestPathTree base =
            shortest_tree(g, s, FailureMask::none(), options);
        if (!mask.node_alive(s)) {
          EXPECT_THROW(repair_tree(g, base, mask, options, ws),
                       PreconditionError);
          continue;
        }
        const ShortestPathTree repaired =
            repair_tree(g, base, mask, options, ws);
        const ShortestPathTree scratch = shortest_tree(g, s, mask, options);
        expect_identical_trees(scratch, repaired,
                               tc.name + " node-fail trial=" +
                                   std::to_string(trial) +
                                   " s=" + std::to_string(s));
      }
    }
  }
}

// Both sides of the fallback threshold must yield the same (identical)
// tree; only the reported path differs. fraction = 0.0 forces the scratch
// fallback the moment anything is orphaned, fraction = 1.0 forbids it.
TEST(IncrementalRepair, FallbackThresholdChangesPathNotResult) {
  Rng rng(71);
  const Graph g = topo::make_random_connected(20, 34, rng, 9);
  const SpfOptions options{.metric = Metric::Weighted, .padded = true};
  SpfWorkspace ws;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const ShortestPathTree base =
        shortest_tree(g, s, FailureMask::none(), options);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      FailureMask mask;
      mask.fail_edge(e);
      const ShortestPathTree scratch = shortest_tree(g, s, mask, options);

      RepairReport always_scratch;
      const ShortestPathTree low = repair_tree(
          g, base, mask, options, ws,
          IncrementalOptions{.max_affected_fraction = 0.0}, &always_scratch);
      RepairReport always_repair;
      const ShortestPathTree high = repair_tree(
          g, base, mask, options, ws,
          IncrementalOptions{.max_affected_fraction = 1.0}, &always_repair);

      const std::string ctx =
          "s=" + std::to_string(s) + " e=" + std::to_string(e);
      expect_identical_trees(scratch, low, ctx + " low");
      expect_identical_trees(scratch, high, ctx + " high");
      // A failed tree edge orphans at least its child endpoint: fraction 0
      // must fall back, fraction 1 must repair (or report identity when the
      // failed edge is not a tree edge).
      const bool tree_edge = base.parent_edge(g.edge(e).u) == e ||
                             base.parent_edge(g.edge(e).v) == e;
      if (tree_edge) {
        EXPECT_EQ(always_scratch.kind, RepairKind::kScratch) << ctx;
        EXPECT_EQ(always_repair.kind, RepairKind::kRepaired) << ctx;
        EXPECT_GT(always_repair.orphaned, 0u) << ctx;
      } else {
        EXPECT_EQ(always_scratch.kind, RepairKind::kIdentity) << ctx;
        EXPECT_EQ(always_repair.kind, RepairKind::kIdentity) << ctx;
      }
    }
  }
}

TEST(IncrementalRepair, IdentityWhenMaskMissesTheTree) {
  // Ring: the tree from any source uses all edges but one; failing that
  // one chord must be recognized as a no-op and return the base verbatim.
  const Graph g = topo::make_ring(9);
  const SpfOptions options{.metric = Metric::Weighted, .padded = true};
  SpfWorkspace ws;
  const ShortestPathTree base =
      shortest_tree(g, 0, FailureMask::none(), options);
  EdgeId chord = graph::kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (base.parent_edge(g.edge(e).u) != e && base.parent_edge(g.edge(e).v) != e) {
      chord = e;
      break;
    }
  }
  ASSERT_NE(chord, graph::kInvalidEdge);
  FailureMask mask;
  mask.fail_edge(chord);
  RepairReport report;
  const ShortestPathTree repaired =
      repair_tree(g, base, mask, options, ws, IncrementalOptions{}, &report);
  EXPECT_EQ(report.kind, RepairKind::kIdentity);
  expect_identical_trees(base, repaired, "ring chord");
}

TEST(IncrementalRepair, DisconnectedSubtreeStaysUnreachable) {
  // Cutting a chain strands the whole tail: the repaired tree must report
  // every stranded node unreachable, exactly like a from-scratch run, and
  // must do so via the repair path (forced by fraction = 1.0).
  const Graph g = topo::make_chain(6);
  const SpfOptions options{.metric = Metric::Weighted, .padded = true};
  SpfWorkspace ws;
  const ShortestPathTree base =
      shortest_tree(g, 0, FailureMask::none(), options);
  FailureMask mask;
  mask.fail_edge(2);  // 2 -- 3: nodes 3..5 stranded
  RepairReport report;
  const ShortestPathTree repaired =
      repair_tree(g, base, mask, options, ws,
                  IncrementalOptions{.max_affected_fraction = 1.0}, &report);
  EXPECT_EQ(report.kind, RepairKind::kRepaired);
  EXPECT_EQ(report.orphaned, 3u);
  const ShortestPathTree scratch = shortest_tree(g, 0, mask, options);
  expect_identical_trees(scratch, repaired, "cut chain");
  for (NodeId v = 3; v < 6; ++v) EXPECT_FALSE(repaired.reachable(v));
}

TEST(IncrementalRepair, RejectsBadInputs) {
  const Graph g = topo::make_ring(6);
  SpfWorkspace ws;
  const SpfOptions padded{.metric = Metric::Weighted, .padded = true};
  const ShortestPathTree base = shortest_tree(g, 0, FailureMask::none(), padded);
  FailureMask mask;
  mask.fail_edge(0);
  // Flavor mismatch between options and the base tree.
  EXPECT_THROW(repair_tree(g, base, mask,
                           SpfOptions{.metric = Metric::Hops, .padded = true},
                           ws),
               PreconditionError);
  EXPECT_THROW(repair_tree(g, base, mask,
                           SpfOptions{.metric = Metric::Weighted,
                                      .padded = false},
                           ws),
               PreconditionError);
  // Partial runs are not repairable.
  EXPECT_THROW(repair_tree(g, base, mask,
                           SpfOptions{.metric = Metric::Weighted,
                                      .padded = true,
                                      .stop_at = 3},
                           ws),
               PreconditionError);
  // Failed source mirrors shortest_tree's precondition.
  FailureMask source_down;
  source_down.fail_node(0);
  EXPECT_THROW(repair_tree(g, base, source_down, padded, ws),
               PreconditionError);
}

// The workspace is reusable across repairs of different sizes and graphs;
// state leaking between runs would show up as divergence on the second use.
TEST(IncrementalRepair, WorkspaceReuseAcrossGraphsIsClean) {
  SpfWorkspace ws;
  Rng rng(97);
  const Graph big = topo::make_random_connected(30, 55, rng, 9);
  const Graph small = topo::make_chain(4);
  const SpfOptions options{.metric = Metric::Weighted, .padded = true};
  for (int round = 0; round < 3; ++round) {
    for (const Graph* g : {&big, &small, &big}) {
      const NodeId s = static_cast<NodeId>(rng.below(g->num_nodes()));
      const ShortestPathTree base =
          shortest_tree(*g, s, FailureMask::none(), options);
      FailureMask mask = random_edge_failures(*g, 2, rng);
      const ShortestPathTree repaired =
          repair_tree(*g, base, mask, options, ws);
      const ShortestPathTree scratch = shortest_tree(*g, s, mask, options);
      expect_identical_trees(scratch, repaired,
                             "reuse round=" + std::to_string(round));
    }
  }
}

// ---------------------------------------------------------------------------
// TreeCache: entry cap, eviction, and repair-mode counters.
// ---------------------------------------------------------------------------

TEST(TreeCacheBound, EvictsLeastRecentlyUsedPastCap) {
  Rng rng(11);
  const Graph g = topo::make_random_connected(12, 20, rng, 4);
  TreeCache cache(g, FailureMask{},
                  SpfOptions{.metric = Metric::Weighted, .padded = true},
                  TreeCacheOptions{.max_entries = 2});
  const std::shared_ptr<const ShortestPathTree> pinned = cache.tree(0);
  for (NodeId s = 1; s < 6; ++s) {
    cache.tree(s);
    EXPECT_LE(cache.size(), 2u) << "after source " << s;
  }
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(cache.evictions(), 4u);
  // The shared_ptr handed out before eviction is still valid and correct.
  EXPECT_EQ(pinned->source(), 0u);
  EXPECT_EQ(pinned->dist(0), 0);
  // Source 0 was evicted long ago: asking again recomputes (a miss).
  cache.tree(0);
  EXPECT_EQ(cache.misses(), 7u);
  EXPECT_EQ(cache.hits(), 0u);
  // A hit on a cached source does not evict.
  const std::size_t evictions_before = cache.evictions();
  cache.tree(0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.evictions(), evictions_before);
}

TEST(TreeCacheBound, UnboundedByDefault) {
  Rng rng(12);
  const Graph g = topo::make_random_connected(10, 18, rng, 4);
  TreeCache cache(g, FailureMask{},
                  SpfOptions{.metric = Metric::Weighted, .padded = true});
  for (NodeId s = 0; s < g.num_nodes(); ++s) cache.tree(s);
  EXPECT_EQ(cache.size(), g.num_nodes());
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(TreeCacheRepairMode, RepairsFromBaseAndMatchesScratch) {
  Rng rng(21);
  const Graph g = topo::make_random_connected(18, 32, rng, 9);
  const SpfOptions options{.metric = Metric::Weighted, .padded = true};
  FailureMask mask = random_edge_failures(g, 2, rng);

  TreeCache unfailed(g, FailureMask{}, options);
  TreeCache repaired(g, mask, options, TreeCacheOptions{}, &unfailed);
  TreeCache scratch(g, mask, options);

  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    expect_identical_trees(*scratch.tree(s), *repaired.tree(s),
                           "cache s=" + std::to_string(s));
  }
  // Every miss went through the repair path (repair or its fallback), and
  // each pulled the base tree from the unfailed cache exactly once.
  EXPECT_EQ(repaired.misses(), g.num_nodes());
  EXPECT_EQ(repaired.repairs() + repaired.repair_fallbacks(),
            repaired.misses());
  EXPECT_GT(repaired.repairs(), 0u);
  EXPECT_EQ(unfailed.misses(), g.num_nodes());

  // fraction = 0.0: every miss with orphans must be a counted fallback,
  // results still identical.
  TreeCache fallback(g, mask, options, TreeCacheOptions{}, &unfailed,
                     IncrementalOptions{.max_affected_fraction = 0.0});
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    expect_identical_trees(*scratch.tree(s), *fallback.tree(s),
                           "fallback s=" + std::to_string(s));
  }
  EXPECT_EQ(fallback.repairs() + fallback.repair_fallbacks(),
            fallback.misses());
  EXPECT_GT(fallback.repair_fallbacks(), 0u);
}

TEST(TreeCacheRepairMode, RejectsMismatchedBase) {
  Rng rng(22);
  const Graph g = topo::make_random_connected(8, 14, rng, 4);
  const Graph other = topo::make_ring(8);
  TreeCache unfailed(g, FailureMask{},
                     SpfOptions{.metric = Metric::Weighted, .padded = true});
  FailureMask mask;
  mask.fail_edge(0);
  EXPECT_THROW(
      TreeCache(other, mask,
                SpfOptions{.metric = Metric::Weighted, .padded = true},
                TreeCacheOptions{}, &unfailed),
      PreconditionError);
  EXPECT_THROW(TreeCache(g, mask,
                         SpfOptions{.metric = Metric::Hops, .padded = true},
                         TreeCacheOptions{}, &unfailed),
               PreconditionError);
}

}  // namespace
}  // namespace rbpc::spf
