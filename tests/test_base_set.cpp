// Unit tests for core/base_set: membership semantics of the three base sets.
#include <gtest/gtest.h>

#include <functional>

#include "core/base_set.hpp"
#include "graph/graph.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;

// Diamond with a tie: 0-1 (1), 1-3 (2), 0-2 (4), 2-3 (1), 1-2 (1).
Graph diamond() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 4);
  b.add_edge(1, 3, 2);
  b.add_edge(2, 3, 1);
  b.add_edge(1, 2, 1);
  return b.build();
}

TEST(AllPairsSet, AcceptsEveryShortestPath) {
  const Graph g = diamond();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet set(oracle);
  EXPECT_TRUE(set.contains(Path::from_nodes(g, {0, 1, 3})));
  EXPECT_TRUE(set.contains(Path::from_nodes(g, {0, 1, 2, 3})));
  EXPECT_FALSE(set.contains(Path::from_nodes(g, {0, 2, 3})));
  EXPECT_TRUE(set.prefix_monotone());
  EXPECT_STREQ(set.name(), "all-pairs-shortest");
}

TEST(AllPairsSet, BasePathIsAShortestPath) {
  const Graph g = diamond();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet set(oracle);
  const Path p = set.base_path(0, 3);
  EXPECT_TRUE(set.contains(p));
  EXPECT_EQ(set.base_path(2, 2).hops(), 0u);
}

TEST(CanonicalSet, AcceptsExactlyOnePerPair) {
  const Graph g = diamond();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet set(oracle);
  const Path a = Path::from_nodes(g, {0, 1, 3});
  const Path b = Path::from_nodes(g, {0, 1, 2, 3});
  EXPECT_NE(set.contains(a), set.contains(b));
  // The member is exactly base_path(0, 3).
  const Path canon = set.base_path(0, 3);
  EXPECT_TRUE(set.contains(canon));
}

TEST(CanonicalSet, TrivialMembership) {
  const Graph g = diamond();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet set(oracle);
  EXPECT_TRUE(set.contains(Path::trivial(1)));
  EXPECT_TRUE(set.contains(Path{}));
}

TEST(ExpandedSet, AcceptsCanonicalPlusEdgeExtensions) {
  const Graph g = diamond();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  ExpandedBaseSet set(oracle);
  CanonicalBaseSet canon_set(oracle);

  // Everything canonical is in the expanded set.
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u == v) continue;
      EXPECT_TRUE(set.contains(canon_set.base_path(u, v)));
    }
  }
  // The non-shortest edge (0,2) alone: canonical-trivial + edge => member.
  EXPECT_TRUE(set.contains(Path::from_nodes(g, {0, 2})));
  // Canonical(0->?) + trailing edge extensions are members.
  const Path canon03 = canon_set.base_path(0, 3);
  // Extend by edge (3,2) when the canonical path doesn't end 2-3.
  if (!canon03.visits_node(2)) {
    Path extended = canon03;
    extended.extend(g, 3, 2);  // edge 3 is (2,3)
    EXPECT_TRUE(set.contains(extended));
  }
  EXPECT_TRUE(set.prefix_monotone());
}

TEST(ExpandedSet, RejectsDoublyExtendedPaths) {
  // 0-2 (non-shortest edge) followed by 2-0-1... a path that is neither
  // canonical nor canonical+one edge must be rejected: 0 -> 2 -> 3 costs 5
  // (canonical 0->3 costs 3) and is not a one-edge extension of any
  // canonical path unless one of its ends strips to a canonical path.
  const Graph g = diamond();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  ExpandedBaseSet set(oracle);
  const Path p = Path::from_nodes(g, {0, 2, 3});
  // Strip front: {2,3} is canonical (it is the unique shortest 2-3 path),
  // so 0-2-3 IS an edge extension. Use a genuinely double-extended path:
  const Path q = Path::from_nodes(g, {2, 0, 1});
  // {0,1} is canonical, so edge+canonical again qualifies. Build a path
  // whose both strips are non-canonical: 3 -> 2 -> 0 -> 1? strip front:
  // {2,0,1}: 2->1 canonical is the direct edge (cost 1), so 2-0-1 (cost 5)
  // is not canonical. strip back: {3,2,0} vs canonical 3->0 (cost 3 via
  // 1): not canonical. So 3-2-0-1 must be rejected.
  const Path r = Path::from_nodes(g, {3, 2, 0, 1});
  EXPECT_TRUE(set.contains(p));
  EXPECT_TRUE(set.contains(q));
  EXPECT_FALSE(set.contains(r));
}

TEST(BaseSets, RejectOracleWithFailures) {
  const Graph g = diamond();
  spf::DistanceOracle failed_oracle(g, FailureMask::of_edges({0}),
                                    spf::Metric::Weighted);
  EXPECT_THROW(AllPairsShortestBaseSet{failed_oracle}, PreconditionError);
  EXPECT_THROW(CanonicalBaseSet{failed_oracle}, PreconditionError);
  EXPECT_THROW(ExpandedBaseSet{failed_oracle}, PreconditionError);
}

TEST(BaseSets, CanonicalIsSubsetOfAllPairs) {
  Rng rng(23);
  const Graph g = topo::make_random_connected(25, 60, rng, 7);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet all(oracle);
  CanonicalBaseSet canon(oracle);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      const Path p = canon.base_path(u, v);
      if (p.empty()) continue;
      EXPECT_TRUE(all.contains(p)) << p.to_string();
      EXPECT_TRUE(canon.contains(p));
    }
  }
}

TEST(ExpandedSet, SizeBoundedByCorollary4Formula) {
  // Corollary 4 bounds the (directed) expanded base set by
  // n(n-1) + 2m(n-1) paths. Enumerate every simple path of a small graph
  // and count the members.
  Rng rng(27);
  const Graph g = topo::make_random_connected(6, 9, rng, 4);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  ExpandedBaseSet set(oracle);

  std::size_t members = 0;
  // DFS enumeration of all simple paths (6 nodes -> tiny).
  std::vector<NodeId> stack;
  std::vector<bool> used(g.num_nodes(), false);
  std::function<void(NodeId)> dfs = [&](NodeId v) {
    stack.push_back(v);
    used[v] = true;
    if (stack.size() >= 2) {
      if (set.contains(Path::from_nodes(g, stack))) ++members;
    }
    for (const graph::Arc& a : g.arcs(v)) {
      if (!used[a.to]) dfs(a.to);
    }
    used[v] = false;
    stack.pop_back();
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) dfs(v);

  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  EXPECT_LE(members, n * (n - 1) + 2 * m * (n - 1));
  // And it is at least the canonical set (one per ordered connected pair).
  EXPECT_GE(members, n * (n - 1) / 2);
}

TEST(BaseSets, HopMetricMembership) {
  // Unweighted: every edge is a shortest path, hence a base path.
  const Graph g = topo::make_ring(6, 1);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    EXPECT_TRUE(set.contains(Path::from_parts(g, {ed.u, ed.v}, {e})));
  }
  // But going 5 hops around a 6-ring is not shortest (the other way is 1).
  EXPECT_FALSE(set.contains(Path::from_nodes(g, {0, 1, 2, 3, 4, 5})));
}

}  // namespace
}  // namespace rbpc::core
