// Differential and property tests for the parallel batch restoration
// engine: core/batch.hpp (BatchRestorer), spf/tree_cache.hpp (shared
// per-source SPF trees) and util/thread_pool.hpp.
//
// The correctness backbone is the differential harness: on a corpus of 50+
// topologies (random families + the paper's gadgets), under both metrics
// and 1-4 edge failures, BatchRestorer with 1, 2 and 8 threads must produce
// results *identical* to the serial source_rbpc_restore loop — same backup
// path, same decomposition, same PC length. Restoration quality under
// failures hinges on consistent tiebreaking (cf. Bodwin-Wang / Bodwin-
// Parter on restorable tiebreaking), so bit-for-bit equality, not just
// equal cost, is the requirement.
//
// This file is also built standalone (rbpc_add_test in tests/CMakeLists.txt)
// so CI can run it under ThreadSanitizer to catch pool/cache data races.
#include <gtest/gtest.h>

#include "corpus.hpp"

#include <atomic>
#include <thread>
#include <string>
#include <vector>

#include "core/base_set.hpp"
#include "core/batch.hpp"
#include "core/decompose.hpp"
#include "core/experiment.hpp"
#include "core/restoration.hpp"
#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "spf/apsp.hpp"
#include "spf/oracle.hpp"
#include "spf/tree_cache.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

// The shared 54-topology corpus lives in corpus.hpp.
using rbpc::testing::TopoCase;
using rbpc::testing::corpus;

FailureMask random_edge_failures(const Graph& g, std::size_t k, Rng& rng) {
  FailureMask mask;
  for (auto e : rng.sample_distinct(g.num_edges(), k)) {
    mask.fail_edge(static_cast<EdgeId>(e));
  }
  return mask;
}

std::vector<RestoreJob> random_jobs(const Graph& g, std::size_t count,
                                    Rng& rng) {
  std::vector<RestoreJob> jobs;
  while (jobs.size() < count) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    jobs.push_back(RestoreJob{s, t});
  }
  // Duplicates and shared sources are the batch engine's bread and butter:
  // repeat the first job and re-root the second at the first's source.
  if (jobs.size() >= 2) {
    jobs.push_back(jobs[0]);
    jobs.push_back(RestoreJob{jobs[0].src, jobs[1].dst});
  }
  return jobs;
}

void expect_identical(const Restoration& want, const Restoration& got,
                      const std::string& context) {
  EXPECT_EQ(want.backup, got.backup) << context << ": backup path differs";
  EXPECT_EQ(want.decomposition.pieces, got.decomposition.pieces)
      << context << ": decomposition pieces differ";
  EXPECT_EQ(want.decomposition.is_base, got.decomposition.is_base)
      << context << ": piece kinds differ";
  EXPECT_EQ(want.pc_length(), got.pc_length())
      << context << ": PC length differs";
}

// ---------------------------------------------------------------------------
// The differential harness. For the hop metric we use the all-pairs base
// set (Theorem 1 applies: <= k+1 pieces); for the weighted metric the
// canonical set (Theorems 2-3: <= 2k+1 components). Both bounds are
// asserted *through the batch API* on every restored job.
// ---------------------------------------------------------------------------

TEST(BatchDifferential, MatchesSerialLoopAcrossCorpusAndThreadCounts) {
  const std::vector<TopoCase> cases = corpus();
  ASSERT_GE(cases.size(), 50u);
  std::size_t compared = 0;

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Graph& g = cases[ci].g;
    for (const spf::Metric metric :
         {spf::Metric::Hops, spf::Metric::Weighted}) {
      spf::DistanceOracle oracle(g, FailureMask{}, metric);
      AllPairsShortestBaseSet all_pairs(oracle);
      CanonicalBaseSet canonical(oracle);
      BasePathSet& base = (metric == spf::Metric::Hops)
                              ? static_cast<BasePathSet&>(all_pairs)
                              : static_cast<BasePathSet&>(canonical);

      // One restorer per thread count, reused across the k sweep so the
      // mask-change cache reset is exercised too.
      BatchRestorer batch1(base, BatchOptions{.threads = 1});
      BatchRestorer batch2(base, BatchOptions{.threads = 2});
      BatchRestorer batch8(base, BatchOptions{.threads = 8});

      Rng rng(7700 + ci * 17 + (metric == spf::Metric::Hops ? 0 : 1));
      for (std::size_t k = 1; k <= 4 && k < g.num_edges(); ++k) {
        const FailureMask mask = random_edge_failures(g, k, rng);
        const std::vector<RestoreJob> jobs = random_jobs(g, 6, rng);

        std::vector<Restoration> want;
        for (const RestoreJob& job : jobs) {
          want.push_back(source_rbpc_restore(base, job.src, job.dst, mask));
        }

        for (BatchRestorer* batch : {&batch1, &batch2, &batch8}) {
          const std::vector<Restoration> got = batch->restore_all(mask, jobs);
          ASSERT_EQ(got.size(), jobs.size());
          for (std::size_t i = 0; i < jobs.size(); ++i) {
            expect_identical(
                want[i], got[i],
                cases[ci].name + " k=" + std::to_string(k) + " threads=" +
                    std::to_string(batch->threads()) + " job#" +
                    std::to_string(i));
            ++compared;
          }
        }

        // Theorem 1 / Theorems 2-3 PC-length ceilings, via the batch API.
        const std::size_t removed = mask.removed_edge_count(g);
        const std::size_t bound = (metric == spf::Metric::Hops)
                                      ? removed + 1
                                      : 2 * removed + 1;
        const std::vector<Restoration> got = batch8.restore_all(mask, jobs);
        for (const Restoration& r : got) {
          if (!r.restored()) continue;
          EXPECT_LE(r.pc_length(), bound)
              << cases[ci].name << ": theorem bound violated (k=" << removed
              << ")";
        }
      }
    }
  }
  // 54 topologies x 2 metrics x up-to-4 k x 8 jobs x 3 thread counts.
  EXPECT_GT(compared, 5000u);
}

// The gadget scenarios where the theorems are *tight*, replayed through the
// batch engine: the bound is hit exactly, proving the batch path preserves
// the canonical tie-breaking the constructions rely on.
TEST(BatchDifferential, TheoremTightGadgetsThroughBatchApi) {
  {
    // Figure 2 comb: failing all k spine edges forces exactly k+1 pieces.
    const std::size_t k = 4;
    const topo::CombGadget comb = topo::make_comb(k);
    spf::DistanceOracle oracle(comb.g, FailureMask{}, spf::Metric::Hops);
    AllPairsShortestBaseSet base(oracle);
    FailureMask mask;
    for (EdgeId e : comb.spine_edges) mask.fail_edge(e);
    BatchRestorer batch(base, BatchOptions{.threads = 4});
    const auto got =
        batch.restore_all(mask, {RestoreJob{comb.s, comb.t}});
    ASSERT_TRUE(got[0].restored());
    EXPECT_EQ(got[0].pc_length(), k + 1);
    const Restoration serial = source_rbpc_restore(base, comb.s, comb.t, mask);
    expect_identical(serial, got[0], "comb");
  }
  {
    // Figure 3 weighted chain: k+1 base paths interleaved with k loose
    // edges — 2k+1 components exactly.
    const std::size_t k = 3;
    const topo::WeightedChainGadget chain = topo::make_weighted_chain(k);
    spf::DistanceOracle oracle(chain.g, FailureMask{}, spf::Metric::Weighted);
    AllPairsShortestBaseSet base(oracle);
    FailureMask mask;
    for (EdgeId e : chain.cheap_parallel_edges) mask.fail_edge(e);
    BatchRestorer batch(base, BatchOptions{.threads = 4});
    const auto got =
        batch.restore_all(mask, {RestoreJob{chain.s, chain.t}});
    ASSERT_TRUE(got[0].restored());
    EXPECT_EQ(got[0].pc_length(), 2 * k + 1);
    EXPECT_EQ(got[0].decomposition.base_count(), k + 1);
    EXPECT_EQ(got[0].decomposition.edge_count(), k);
  }
}

// ---------------------------------------------------------------------------
// BatchRestorer semantics and stats.
// ---------------------------------------------------------------------------

TEST(BatchRestorer, EdgeCasesMatchSerialSemantics) {
  Rng topo_rng(42);
  const Graph g = topo::make_random_connected(16, 30, topo_rng, 5);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet base(oracle);
  BatchRestorer batch(base, BatchOptions{.threads = 3});

  // Empty batch.
  EXPECT_TRUE(batch.restore_all(FailureMask{}, {}).empty());

  // Trivial pair (src == dst): restored with an empty decomposition, like
  // the serial engine.
  const auto trivial = batch.restore_all(FailureMask{}, {RestoreJob{3, 3}});
  const Restoration serial_trivial = source_rbpc_restore(base, 3, 3, FailureMask{});
  expect_identical(serial_trivial, trivial[0], "trivial pair");
  EXPECT_TRUE(trivial[0].restored());
  EXPECT_EQ(trivial[0].pc_length(), 0u);

  // Failed source throws, exactly like spf::shortest_tree in the serial
  // path; failed destination is merely unrestorable.
  FailureMask dead_node;
  dead_node.fail_node(5);
  EXPECT_THROW(batch.restore_all(dead_node, {RestoreJob{5, 7}}),
               PreconditionError);
  EXPECT_THROW(source_rbpc_restore(base, 5, 7, dead_node), PreconditionError);
  const auto to_dead = batch.restore_all(dead_node, {RestoreJob{7, 5}});
  EXPECT_FALSE(to_dead[0].restored());

  // Out-of-range endpoints throw.
  EXPECT_THROW(batch.restore_all(
                   FailureMask{},
                   {RestoreJob{0, static_cast<NodeId>(g.num_nodes())}}),
               PreconditionError);
}

TEST(BatchRestorer, SharesTreesAcrossJobsAndBatchesUnderOneMask) {
  Rng topo_rng(77);
  const Graph g = topo::make_random_connected(20, 45, topo_rng, 6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet base(oracle);
  BatchRestorer batch(base, BatchOptions{.threads = 2});

  FailureMask mask;
  mask.fail_edge(0);
  // 8 jobs from only 2 distinct sources.
  std::vector<RestoreJob> jobs;
  for (NodeId t = 2; t < 6; ++t) jobs.push_back(RestoreJob{0, t});
  for (NodeId t = 6; t < 10; ++t) jobs.push_back(RestoreJob{1, t});
  batch.restore_all(mask, jobs);
  EXPECT_EQ(batch.stats().spf_cache_misses, 2u);
  EXPECT_EQ(batch.stats().spf_cache_hits, jobs.size() - 2);

  // Same mask again (fresh object, equal content): everything is a hit.
  FailureMask same;
  same.fail_edge(0);
  batch.restore_all(same, jobs);
  EXPECT_EQ(batch.stats().spf_cache_misses, 2u);
  EXPECT_EQ(batch.stats().spf_cache_hits, 2 * jobs.size() - 2);
  EXPECT_EQ(batch.stats().mask_changes, 0u);

  // New mask: the shared trees are invalid and rebuilt.
  FailureMask other;
  other.fail_edge(1);
  batch.restore_all(other, jobs);
  EXPECT_EQ(batch.stats().mask_changes, 1u);
  EXPECT_EQ(batch.stats().spf_cache_misses, 4u);
  EXPECT_EQ(batch.stats().batches, 3u);
  EXPECT_EQ(batch.stats().jobs, 3 * jobs.size());
}

TEST(BatchRestorer, HardwareDefaultThreadCount) {
  Rng topo_rng(7);
  const Graph g = topo::make_ring(6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet base(oracle);
  BatchRestorer batch(base, BatchOptions{.threads = 0});
  EXPECT_GE(batch.threads(), 1u);
  EXPECT_EQ(batch.threads(), ThreadPool::default_threads());
}

TEST(BatchRestorer, AffectedLspsFindsBrokenPaths) {
  const Graph g = topo::make_chain(5);  // edges i: i -- i+1
  std::vector<Path> lsps;
  lsps.push_back(Path::from_nodes(g, {0, 1, 2}));
  lsps.push_back(Path::from_nodes(g, {2, 3}));
  lsps.push_back(Path::trivial(4));
  lsps.push_back(Path{});
  FailureMask mask;
  mask.fail_edge(1);  // breaks 1-2, so only the first LSP
  EXPECT_EQ(affected_lsps(g, lsps, mask), (std::vector<std::size_t>{0}));
  FailureMask node_mask;
  node_mask.fail_node(2);  // breaks both non-trivial LSPs
  EXPECT_EQ(affected_lsps(g, lsps, node_mask),
            (std::vector<std::size_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Storm experiment driver: thread-count independence end to end.
// ---------------------------------------------------------------------------

TEST(StormExperiment, ResultsAreThreadCountIndependent) {
  Rng topo_rng(11);
  const Graph g = topo::make_random_connected(40, 100, topo_rng, 12);
  StormConfig cfg;
  cfg.provisioned = 60;
  cfg.events = 10;
  cfg.max_failed_links = 3;
  cfg.threads = 1;
  const StormResult serial = run_storm(g, cfg);
  cfg.threads = 4;
  const StormResult parallel = run_storm(g, cfg);

  EXPECT_GT(serial.affected, 0u);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.affected, parallel.affected);
  EXPECT_EQ(serial.restored, parallel.restored);
  EXPECT_EQ(serial.unrestorable, parallel.unrestorable);
  EXPECT_DOUBLE_EQ(serial.avg_pc_length, parallel.avg_pc_length);
  EXPECT_EQ(serial.max_pc_length, parallel.max_pc_length);
  // Weighted canonical base: Theorems 2-3 ceiling.
  EXPECT_LE(serial.max_pc_length, 2 * cfg.max_failed_links + 1);
  // Same workload, same sharing opportunities.
  EXPECT_EQ(serial.spf_cache_misses, parallel.spf_cache_misses);
  EXPECT_EQ(serial.spf_cache_hits, parallel.spf_cache_hits);
}

// ---------------------------------------------------------------------------
// TreeCache property tests: a cached tree under mask M must agree with a
// fresh ApspMatrix(g, M) oracle on every distance.
// ---------------------------------------------------------------------------

TEST(TreeCacheProperty, AgreesWithApspOracleOnEveryDistance) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(500 + seed);
    const Graph g = topo::make_random_connected(14, 26, rng, 7);
    FailureMask mask = random_edge_failures(g, 1 + seed % 4, rng);
    if (seed % 2 == 1) {
      mask.fail_node(static_cast<NodeId>(rng.below(g.num_nodes())));
    }
    for (const spf::Metric metric :
         {spf::Metric::Hops, spf::Metric::Weighted}) {
      for (const bool padded : {false, true}) {
        spf::TreeCache cache(
            g, mask, spf::SpfOptions{.metric = metric, .padded = padded});
        const spf::ApspMatrix apsp(g, mask, metric);
        for (NodeId s = 0; s < g.num_nodes(); ++s) {
          if (!mask.node_alive(s)) {
            EXPECT_THROW(cache.tree(s), PreconditionError);
            continue;
          }
          const std::shared_ptr<const spf::ShortestPathTree> tree =
              cache.tree(s);
          for (NodeId v = 0; v < g.num_nodes(); ++v) {
            EXPECT_EQ(tree->dist(v), apsp.dist(s, v))
                << "seed=" << seed << " s=" << s << " v=" << v;
          }
        }
      }
    }
  }
}

TEST(TreeCacheProperty, DisconnectedSourceRegression) {
  // Failing node 0's only link isolates it without failing it: the cached
  // tree must report everything (but the source itself) unreachable, in
  // agreement with the APSP oracle — and the batch engine must report the
  // pair unrestorable rather than crash or hang.
  const Graph g = topo::make_chain(4);
  FailureMask mask;
  mask.fail_edge(0);  // 0 -- 1
  spf::TreeCache cache(g, mask,
                       spf::SpfOptions{.metric = spf::Metric::Weighted,
                                       .padded = true});
  const spf::ApspMatrix apsp(g, mask, spf::Metric::Weighted);
  const std::shared_ptr<const spf::ShortestPathTree> tree = cache.tree(0);
  EXPECT_EQ(tree->dist(0), 0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tree->dist(v), graph::kUnreachable);
    EXPECT_EQ(tree->dist(v), apsp.dist(0, v));
    EXPECT_FALSE(tree->reachable(v));
  }

  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet base(oracle);
  BatchRestorer batch(base, BatchOptions{.threads = 2});
  const auto got = batch.restore_all(mask, {RestoreJob{0, 3}});
  EXPECT_FALSE(got[0].restored());
  const Restoration serial = source_rbpc_restore(base, 0, 3, mask);
  expect_identical(serial, got[0], "disconnected source");
}

TEST(TreeCacheProperty, CountsHitsAndComputesEachTreeOnce) {
  Rng rng(9);
  const Graph g = topo::make_random_connected(12, 20, rng, 4);
  spf::TreeCache cache(g, FailureMask{},
                       spf::SpfOptions{.metric = spf::Metric::Weighted});
  cache.tree(0);
  cache.tree(1);
  cache.tree(0);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.tree(0);
  EXPECT_EQ(cache.misses(), 3u);  // counters survive clear, trees do not

  // Full runs only: an early-exit cache would silently serve wrong answers.
  EXPECT_THROW(
      spf::TreeCache(g, FailureMask{},
                     spf::SpfOptions{.metric = spf::Metric::Hops,
                                     .stop_at = 3}),
      PreconditionError);
}

TEST(TreeCacheProperty, ConcurrentRequestsComputeOncePerSource) {
  Rng rng(13);
  const Graph g = topo::make_random_connected(24, 60, rng, 8);
  spf::TreeCache cache(g, FailureMask{},
                       spf::SpfOptions{.metric = spf::Metric::Weighted,
                                       .padded = true});
  const spf::ApspMatrix apsp(g, FailureMask::none(), spf::Metric::Weighted);
  ThreadPool pool(8);
  std::atomic<std::size_t> mismatches{0};
  pool.parallel_for(200, [&](std::size_t i) {
    const NodeId s = static_cast<NodeId>(i % 5);
    const std::shared_ptr<const spf::ShortestPathTree> tree = cache.tree(s);
    const NodeId v = static_cast<NodeId>(i % g.num_nodes());
    if (tree->dist(v) != apsp.dist(s, v)) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(cache.misses(), 5u);  // exactly one SPF per distinct source
  EXPECT_EQ(cache.hits(), 195u);
}

TEST(TreeCacheProperty, BoundedCacheStaysCorrectUnderConcurrentEviction) {
  // A capped cache under concurrent load keeps evicting and recomputing;
  // every tree handed out must still be correct, and outstanding
  // shared_ptrs must outlive their entries' eviction. Run under TSan in CI.
  Rng rng(17);
  const Graph g = topo::make_random_connected(20, 48, rng, 8);
  spf::TreeCache cache(g, FailureMask{},
                       spf::SpfOptions{.metric = spf::Metric::Weighted,
                                       .padded = true},
                       spf::TreeCacheOptions{.max_entries = 3});
  const spf::ApspMatrix apsp(g, FailureMask::none(), spf::Metric::Weighted);
  ThreadPool pool(8);
  std::atomic<std::size_t> mismatches{0};
  pool.parallel_for(400, [&](std::size_t i) {
    const NodeId s = static_cast<NodeId>(i % 9);  // 9 sources, 3 slots
    const std::shared_ptr<const spf::ShortestPathTree> tree = cache.tree(s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (tree->dist(v) != apsp.dist(s, v)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(cache.size(), 3u);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(), 400u);
}

// ---------------------------------------------------------------------------
// ThreadPool unit tests.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  for (auto& t : touched) t.store(0);
  pool.parallel_for(touched.size(),
                    [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i % 7 == 3) {
                                     require(false, "boom from worker");
                                   }
                                 }),
               PreconditionError);
  // The pool survives a throwing batch and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SubmittedTasksDrainBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, SubmitSurfacesWorkerExceptions) {
  // One worker makes the queue FIFO: once the sentinel task has run, the
  // throwing task before it has certainly finished.
  ThreadPool pool(1);
  pool.submit([] { require(false, "boom from submitted task"); });
  std::atomic<bool> sentinel{false};
  pool.submit([&] { sentinel.store(true); });
  while (!sentinel.load()) std::this_thread::yield();

  EXPECT_TRUE(pool.has_error());
  EXPECT_THROW(pool.rethrow_first_error(), PreconditionError);
  // Rethrowing consumes the error; the pool survives and keeps working.
  EXPECT_FALSE(pool.has_error());
  pool.rethrow_first_error();  // no error left: must not throw
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.submit([&] { count.fetch_add(1); });
  while (count.load() < 2) std::this_thread::yield();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, SizeAndDefaults) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "n == 0 runs nothing"; });
}

}  // namespace
}  // namespace rbpc::core
