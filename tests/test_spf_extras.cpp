// Tests for the SPF extras: Floyd–Warshall APSP (oracle) and bidirectional
// Dijkstra, cross-checked against each other and against plain Dijkstra.
#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "spf/apsp.hpp"
#include "spf/bidirectional.hpp"
#include "spf/spf.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::spf {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

TEST(Apsp, MatchesDijkstraOnSmallGraphs) {
  Rng rng(121);
  const Graph g = topo::make_random_connected(25, 60, rng, 9);
  const ApspMatrix apsp(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto tree = shortest_tree(g, s);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_EQ(apsp.dist(s, t), tree.dist(t)) << s << "->" << t;
    }
  }
}

TEST(Apsp, HopMetricAndMask) {
  const Graph g = topo::make_ring(8);
  const ApspMatrix apsp(g, FailureMask::of_edges({0}), Metric::Hops);
  EXPECT_EQ(apsp.dist(0, 1), 7);  // the long way
  EXPECT_EQ(apsp.dist(2, 4), 2);
  EXPECT_TRUE(apsp.reachable(0, 4));
}

TEST(Apsp, DisconnectedAndFailedNodes) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const ApspMatrix apsp(g);
  EXPECT_FALSE(apsp.reachable(0, 3));
  EXPECT_EQ(apsp.dist(0, 0), 0);

  const ApspMatrix masked(g, FailureMask::of_nodes({1}));
  EXPECT_FALSE(masked.reachable(0, 1));
  EXPECT_FALSE(masked.reachable(1, 1));  // failed node unreachable from self
}

TEST(Apsp, DirectedRespected) {
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  const ApspMatrix apsp(g);
  EXPECT_EQ(apsp.dist(0, 2), 2);
  EXPECT_FALSE(apsp.reachable(2, 0));
}

TEST(Apsp, DiameterOfGadgets) {
  // Two-level star: everything within 2 via the hub.
  const auto star = topo::make_two_level_star(12);
  EXPECT_EQ(ApspMatrix(star.g, FailureMask::none(), Metric::Hops).diameter(),
            2);
  const Graph ring = topo::make_ring(10);
  EXPECT_EQ(ApspMatrix(ring, FailureMask::none(), Metric::Hops).diameter(), 5);
}

TEST(Bidirectional, MatchesDijkstraCosts) {
  Rng rng(127);
  const Graph g = topo::make_random_connected(60, 150, rng, 12);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const auto bi = bidirectional_shortest_path(g, s, t);
    EXPECT_EQ(bi.cost, distance(g, s, t)) << s << "->" << t;
    ASSERT_FALSE(bi.path.empty());
    EXPECT_EQ(bi.path.source(), s);
    EXPECT_EQ(bi.path.target(), t);
    EXPECT_EQ(bi.path.cost(g), bi.cost);
  }
}

TEST(Bidirectional, MatchesUnderFailures) {
  Rng rng(131);
  const Graph g = topo::make_random_connected(40, 90, rng, 6);
  for (int trial = 0; trial < 40; ++trial) {
    FailureMask mask;
    for (auto e : rng.sample_distinct(g.num_edges(), 3)) {
      mask.fail_edge(static_cast<graph::EdgeId>(e));
    }
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const auto bi = bidirectional_shortest_path(g, s, t, mask);
    const auto want = distance(g, s, t, mask);
    EXPECT_EQ(bi.cost, want);
    if (want != graph::kUnreachable) {
      EXPECT_TRUE(bi.path.alive(g, mask));
    } else {
      EXPECT_TRUE(bi.path.empty());
    }
  }
}

TEST(Bidirectional, HopMetric) {
  const Graph g = topo::make_grid(4, 4);
  const auto bi =
      bidirectional_shortest_path(g, 0, 15, FailureMask::none(), Metric::Hops);
  EXPECT_EQ(bi.cost, 6);
  EXPECT_EQ(bi.path.hops(), 6u);
}

TEST(Bidirectional, SettlesFewerNodesThanFullDijkstraOnMeshes) {
  Rng rng(137);
  const Graph g = topo::make_as_like(rng, 0.2);  // ~950 nodes
  std::size_t fewer = 0;
  int evaluated = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    ++evaluated;
    const auto bi = bidirectional_shortest_path(g, s, t, FailureMask::none(),
                                                Metric::Hops);
    if (bi.settled < g.num_nodes() / 2) ++fewer;
  }
  // On power-law meshes, the meet-in-the-middle frontier is usually tiny.
  EXPECT_GT(fewer * 2, static_cast<std::size_t>(evaluated));
}

TEST(Bidirectional, Validation) {
  const Graph g = topo::make_ring(4);
  EXPECT_THROW(bidirectional_shortest_path(g, 0, 0), PreconditionError);
  EXPECT_THROW(bidirectional_shortest_path(g, 0, 9), PreconditionError);
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph dg = b.build();
  EXPECT_THROW(bidirectional_shortest_path(dg, 0, 2), PreconditionError);
}

// --- DOT export ----------------------------------------------------------------

TEST(Dot, ContainsNodesEdgesAndHighlights) {
  const Graph g = topo::make_ring(4);
  graph::DotOptions opts;
  opts.failures.fail_edge(2);
  opts.highlight = graph::Path::from_nodes(g, {0, 1});
  const std::string dot = graph::to_dot(g, opts);
  EXPECT_NE(dot.find("graph rbpc {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("color=red style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("color=blue penwidth=2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"1\""), std::string::npos);  // weight label
}

TEST(Dot, DirectedUsesArrows) {
  graph::GraphBuilder b(2, /*directed=*/true);
  b.add_edge(0, 1);
  const std::string dot = graph::to_dot(b.build());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, WeightsCanBeHidden) {
  const Graph g = topo::make_ring(3, 42);
  graph::DotOptions opts;
  opts.show_weights = false;
  EXPECT_EQ(graph::to_dot(g, opts).find("label=\"42\""), std::string::npos);
}

}  // namespace
}  // namespace rbpc::spf
