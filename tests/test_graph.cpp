// Unit tests for src/graph: builder/CSR, paths, failure masks, analysis, IO.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/analysis.hpp"
#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/path.hpp"
#include "util/error.hpp"

namespace rbpc::graph {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 0, 3);
  return b.build();
}

// --- GraphBuilder / Graph ------------------------------------------------------

TEST(GraphBuilder, RejectsBadEdges) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3, 1), PreconditionError);  // out of range
  EXPECT_THROW(b.add_edge(1, 1, 1), PreconditionError);  // self loop
  EXPECT_THROW(b.add_edge(0, 1, 0), PreconditionError);  // non-positive weight
  EXPECT_THROW(b.add_edge(0, 1, -5), PreconditionError);
}

TEST(GraphBuilder, EdgeIdsAreInsertionOrder) {
  GraphBuilder b(3);
  EXPECT_EQ(b.add_edge(0, 1), 0u);
  EXPECT_EQ(b.add_edge(1, 2), 1u);
}

TEST(GraphBuilder, HasEdgeUndirected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_TRUE(b.has_edge(1, 0));
  EXPECT_FALSE(b.has_edge(0, 2));
}

TEST(GraphBuilder, HasEdgeDirected) {
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1);
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_FALSE(b.has_edge(1, 0));
}

TEST(Graph, BasicAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.weight(1), 2);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_FALSE(g.is_unit_weight());
}

TEST(Graph, ArcsAreSortedAndComplete) {
  const Graph g = triangle();
  const auto arcs = g.arcs(1);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].to, 0u);
  EXPECT_EQ(arcs[1].to, 2u);
}

TEST(Graph, OtherEnd) {
  const Graph g = triangle();
  EXPECT_EQ(g.other_end(0, 0u), 1u);
  EXPECT_EQ(g.other_end(0, 1u), 0u);
  EXPECT_THROW(g.other_end(0, 2u), PreconditionError);
}

TEST(Graph, FindEdgePicksMinWeightParallel) {
  GraphBuilder b(2);
  const EdgeId heavy = b.add_edge(0, 1, 9);
  const EdgeId light = b.add_edge(0, 1, 2);
  const Graph g = b.build();
  ASSERT_TRUE(g.find_edge(0, 1).has_value());
  EXPECT_EQ(*g.find_edge(0, 1), light);
  EXPECT_EQ(g.find_all_edges(0, 1), (std::vector<EdgeId>{heavy, light}));
}

TEST(Graph, FindEdgeAbsent) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_FALSE(g.find_edge(0, 2).has_value());
}

TEST(Graph, CheapestArcParallelEdgeTieBreak) {
  // Three parallel 0-1 links: two tied at the minimum weight, one heavier.
  // The survivor of minimum weight must win, and among equal-weight
  // survivors the lowest edge id — independent of which endpoint's
  // adjacency the degree heuristic scans.
  GraphBuilder b(3);
  const EdgeId tied_lo = b.add_edge(0, 1, 2);
  const EdgeId heavy = b.add_edge(0, 1, 9);
  const EdgeId tied_hi = b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 1);  // skews degree(1) above degree(0)
  const Graph g = b.build();

  EXPECT_EQ(g.cheapest_arc(0, 1, FailureMask::none()), tied_lo);
  EXPECT_EQ(g.cheapest_arc(1, 0, FailureMask::none()), tied_lo);

  FailureMask mask;
  mask.fail_edge(tied_lo);
  EXPECT_EQ(g.cheapest_arc(0, 1, mask), tied_hi);
  mask.fail_edge(tied_hi);
  EXPECT_EQ(g.cheapest_arc(0, 1, mask), heavy);
  mask.fail_edge(heavy);
  EXPECT_EQ(g.cheapest_arc(0, 1, mask), kInvalidEdge);

  // Dead endpoints and absent links answer kInvalidEdge, not a throw.
  FailureMask dead;
  dead.fail_node(1);
  EXPECT_EQ(g.cheapest_arc(0, 1, dead), kInvalidEdge);
  EXPECT_EQ(g.cheapest_arc(0, 2, FailureMask::none()), kInvalidEdge);
}

TEST(Graph, DirectedArcsOneWay) {
  GraphBuilder b(2, /*directed=*/true);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_TRUE(g.find_edge(0, 1).has_value());
  EXPECT_FALSE(g.find_edge(1, 0).has_value());
}

TEST(Graph, EmptyGraphDefaultConstructible) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

// --- FailureMask -----------------------------------------------------------------

TEST(FailureMask, DefaultIsAllUp) {
  const Graph g = triangle();
  const FailureMask m;
  EXPECT_TRUE(m.empty());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_TRUE(m.edge_alive(g, e));
}

TEST(FailureMask, EdgeFailureAndRestore) {
  const Graph g = triangle();
  FailureMask m;
  m.fail_edge(1);
  EXPECT_TRUE(m.edge_failed(1));
  EXPECT_FALSE(m.edge_alive(g, 1));
  EXPECT_TRUE(m.edge_alive(g, 0));
  EXPECT_EQ(m.failed_edge_count(), 1u);
  m.restore_edge(1);
  EXPECT_TRUE(m.empty());
}

TEST(FailureMask, NodeFailureKillsIncidentEdges) {
  const Graph g = triangle();
  FailureMask m;
  m.fail_node(0);
  EXPECT_FALSE(m.edge_alive(g, 0));  // (0,1)
  EXPECT_TRUE(m.edge_alive(g, 1));   // (1,2)
  EXPECT_FALSE(m.edge_alive(g, 2));  // (2,0)
  EXPECT_EQ(m.removed_edge_count(g), 2u);
}

TEST(FailureMask, IdempotentOperations) {
  FailureMask m;
  m.fail_edge(5);
  m.fail_edge(5);
  EXPECT_EQ(m.failed_edge_count(), 1u);
  m.restore_edge(5);
  m.restore_edge(5);
  EXPECT_EQ(m.failed_edge_count(), 0u);
  m.restore_edge(99);  // restoring something never failed is a no-op
  EXPECT_TRUE(m.empty());
}

TEST(FailureMask, Factories) {
  const auto m1 = FailureMask::of_edges({1, 3});
  EXPECT_EQ(m1.failed_edges(), (std::vector<EdgeId>{1, 3}));
  const auto m2 = FailureMask::of_nodes({2});
  EXPECT_EQ(m2.failed_nodes(), (std::vector<NodeId>{2}));
  EXPECT_TRUE(FailureMask::none().empty());
}

// --- Path --------------------------------------------------------------------------

TEST(Path, TrivialAndEmpty) {
  const Path empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.hops(), 0u);
  EXPECT_THROW(empty.source(), PreconditionError);

  const Path t = Path::trivial(4);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.hops(), 0u);
  EXPECT_EQ(t.source(), 4u);
  EXPECT_EQ(t.target(), 4u);
}

TEST(Path, FromNodesSelectsMinWeightEdge) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 9);
  const EdgeId light = b.add_edge(0, 1, 2);
  const Graph g = b.build();
  const Path p = Path::from_nodes(g, {0, 1});
  EXPECT_EQ(p.edge(0), light);
  EXPECT_EQ(p.cost(g), 2);
}

TEST(Path, FromNodesRespectsMask) {
  GraphBuilder b(2);
  const EdgeId light = b.add_edge(0, 1, 2);
  const EdgeId heavy = b.add_edge(0, 1, 9);
  const Graph g = b.build();
  FailureMask m;
  m.fail_edge(light);
  const Path p = Path::from_nodes(g, {0, 1}, m);
  EXPECT_EQ(p.edge(0), heavy);
  m.fail_edge(heavy);
  EXPECT_THROW(Path::from_nodes(g, {0, 1}, m), NoRouteError);
}

TEST(Path, FromPartsValidates) {
  const Graph g = triangle();
  EXPECT_NO_THROW(Path::from_parts(g, {0, 1, 2}, {0, 1}));
  EXPECT_THROW(Path::from_parts(g, {0, 2}, {0}), PreconditionError);
  EXPECT_THROW(Path::from_parts(g, {0, 1}, {}), PreconditionError);
}

TEST(Path, CostHopsAndQueries) {
  const Graph g = triangle();
  const Path p = Path::from_parts(g, {0, 1, 2}, {0, 1});
  EXPECT_EQ(p.hops(), 2u);
  EXPECT_EQ(p.cost(g), 3);
  EXPECT_TRUE(p.uses_edge(0));
  EXPECT_FALSE(p.uses_edge(2));
  EXPECT_TRUE(p.visits_node(1));
  EXPECT_TRUE(p.simple());
}

TEST(Path, AliveUnderMask) {
  const Graph g = triangle();
  const Path p = Path::from_parts(g, {0, 1, 2}, {0, 1});
  EXPECT_TRUE(p.alive(g, FailureMask::none()));
  EXPECT_FALSE(p.alive(g, FailureMask::of_edges({1})));
  EXPECT_FALSE(p.alive(g, FailureMask::of_nodes({1})));
  EXPECT_TRUE(p.alive(g, FailureMask::of_edges({2})));
}

TEST(Path, ConcatRequiresMatchingEndpoints) {
  const Graph g = triangle();
  const Path a = Path::from_parts(g, {0, 1}, {0});
  const Path bc = Path::from_parts(g, {1, 2}, {1});
  const Path joined = a.concat(bc);
  EXPECT_EQ(joined.nodes(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_THROW(bc.concat(a), PreconditionError);
}

TEST(Path, ConcatWithEmptyAndTrivial) {
  const Graph g = triangle();
  const Path a = Path::from_parts(g, {0, 1}, {0});
  EXPECT_EQ(Path{}.concat(a), a);
  EXPECT_EQ(a.concat(Path{}), a);
  EXPECT_EQ(a.concat(Path::trivial(1)), a);
}

TEST(Path, SubpathPrefixSuffix) {
  const Graph g = triangle();
  const Path p = Path::from_parts(g, {0, 1, 2}, {0, 1});
  EXPECT_EQ(p.subpath(0, 1).nodes(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(p.subpath(1, 1).hops(), 0u);
  EXPECT_EQ(p.prefix_hops(1), p.subpath(0, 1));
  EXPECT_EQ(p.suffix_from(1).nodes(), (std::vector<NodeId>{1, 2}));
  EXPECT_THROW(p.subpath(2, 1), PreconditionError);
}

TEST(Path, Reversed) {
  const Graph g = triangle();
  const Path p = Path::from_parts(g, {0, 1, 2}, {0, 1});
  const Path r = p.reversed();
  EXPECT_EQ(r.nodes(), (std::vector<NodeId>{2, 1, 0}));
  EXPECT_EQ(r.edges(), (std::vector<EdgeId>{1, 0}));
}

TEST(Path, ExtendValidatesContinuity) {
  const Graph g = triangle();
  Path p = Path::trivial(0);
  p.extend(g, 0, 1);
  EXPECT_EQ(p.target(), 1u);
  EXPECT_THROW(p.extend(g, 2, 0), PreconditionError);  // edge 2 is (2,0)
}

TEST(Path, NonSimpleDetected) {
  const Graph g = triangle();
  const Path p = Path::from_parts(g, {0, 1, 0}, {0, 0});
  EXPECT_FALSE(p.simple());
}

TEST(Path, ToString) {
  const Graph g = triangle();
  EXPECT_EQ(Path::from_parts(g, {0, 1}, {0}).to_string(), "0 -> 1");
  EXPECT_EQ(Path{}.to_string(), "(no route)");
}

// --- analysis ------------------------------------------------------------------------

TEST(Analysis, ComponentsAndConnectivity) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u);
  EXPECT_TRUE(comps.same_component(0, 2));
  EXPECT_FALSE(comps.same_component(0, 3));
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(connected(g, 0, 2));
  EXPECT_FALSE(connected(g, 0, 4));
}

TEST(Analysis, ConnectivityUnderMask) {
  const Graph g = triangle();
  EXPECT_TRUE(is_connected(g));
  // Failing two edges of the triangle still leaves it connected.
  EXPECT_TRUE(is_connected(g, FailureMask::of_edges({0})));
  EXPECT_TRUE(is_connected(g, FailureMask::of_edges({0, 1})) ||
              !is_connected(g, FailureMask::of_edges({0, 1})));
  // Failing a node removes it from consideration entirely.
  EXPECT_TRUE(is_connected(g, FailureMask::of_nodes({0})));
}

TEST(Analysis, BridgesInChain) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(find_bridges(g).size(), 3u);
  EXPECT_FALSE(is_two_edge_connected(g));
}

TEST(Analysis, NoBridgesInCycle) {
  const Graph g = triangle();
  EXPECT_TRUE(find_bridges(g).empty());
  EXPECT_TRUE(is_two_edge_connected(g));
}

TEST(Analysis, ParallelEdgesAreNotBridges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(find_bridges(g), (std::vector<EdgeId>{2}));
}

TEST(Analysis, BridgesUnderMask) {
  const Graph g = triangle();
  // Failing one edge of the triangle makes the remaining two bridges.
  EXPECT_EQ(find_bridges(g, FailureMask::of_edges({0})).size(), 2u);
}

TEST(Analysis, ClusteringCoefficientTriangle) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(triangle_edge_fraction(g), 1.0);
}

TEST(Analysis, ClusteringCoefficientTreeIsZero) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(triangle_edge_fraction(g), 0.0);
}

TEST(Analysis, ClusteringCoefficientMixed) {
  // A triangle with a pendant: triangles 1 (x3 closed triples); triples:
  // node0: C(3,2)=3 (neighbors 1,2,3), nodes 1,2: 1 each -> total 5;
  // closed = 3 -> C = 0.6. Edge fraction: 3 of 4 edges in a triangle.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(triangle_edge_fraction(g), 0.75);
}

TEST(Analysis, ClusteringIgnoresParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // parallel: must not fake a triangle
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(triangle_edge_fraction(g), 0.0);
}

TEST(Analysis, DegreeStats) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const auto stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_NEAR(stats.mean, 4.0 / 3.0, 1e-12);
}

// --- io ----------------------------------------------------------------------------

TEST(GraphIo, RoundTrip) {
  const Graph g = triangle();
  std::stringstream ss;
  save_graph(ss, g);
  const Graph h = load_graph(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_FALSE(h.directed());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_EQ(h.edge(e).weight, g.edge(e).weight);
  }
}

TEST(GraphIo, DirectedRoundTrip) {
  GraphBuilder b(2, /*directed=*/true);
  b.add_edge(0, 1, 5);
  std::stringstream ss;
  save_graph(ss, b.build());
  const Graph h = load_graph(ss);
  EXPECT_TRUE(h.directed());
}

TEST(GraphIo, CommentsAndBlanksIgnored) {
  std::stringstream ss(
      "rbpc-graph 1\n# a comment\n\n  \ndirected 0\nnodes 2\nedge 0 1 7 # w\n");
  const Graph g = load_graph(ss);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weight(0), 7);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("bogus 1\n");
    EXPECT_THROW(load_graph(ss), InputError);
  }
  {
    std::stringstream ss("rbpc-graph 1\nedge 0 1 1\n");
    EXPECT_THROW(load_graph(ss), InputError);  // edge before nodes
  }
  {
    std::stringstream ss("rbpc-graph 1\nnodes 2\nedge 0 5 1\n");
    EXPECT_THROW(load_graph(ss), InputError);  // endpoint out of range
  }
  {
    std::stringstream ss("rbpc-graph 1\nnodes 2\nfrobnicate\n");
    EXPECT_THROW(load_graph(ss), InputError);  // unknown keyword
  }
  {
    std::stringstream ss("");
    EXPECT_THROW(load_graph(ss), InputError);
  }
}

TEST(GraphIo, FileErrors) {
  EXPECT_THROW(load_graph_file("/nonexistent/path/graph.txt"), InputError);
}

}  // namespace
}  // namespace rbpc::graph
