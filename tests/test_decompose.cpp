// Unit tests for core/decompose: greedy and overlay decomposition.
#include <gtest/gtest.h>

#include "core/base_set.hpp"
#include "core/decompose.hpp"
#include "graph/graph.hpp"
#include "spf/spf.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;

TEST(Decomposition, CountsAndJoin) {
  const Graph g = topo::make_chain(4);
  Decomposition d;
  d.pieces = {Path::from_nodes(g, {0, 1, 2}), Path::from_nodes(g, {2, 3})};
  d.is_base = {true, false};
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.base_count(), 1u);
  EXPECT_EQ(d.edge_count(), 1u);
  EXPECT_EQ(d.joined(), Path::from_nodes(g, {0, 1, 2, 3}));
}

TEST(GreedyDecompose, ShortestPathIsOnePiece) {
  const Graph g = topo::make_ring(8);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  const Path p = spf::shortest_path(g, 0, 3, FailureMask::none(),
                                    spf::SpfOptions{.metric = spf::Metric::Hops});
  const Decomposition d = greedy_decompose(set, p);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.is_base[0]);
  EXPECT_EQ(d.joined(), p);
}

TEST(GreedyDecompose, RingDetourSplitsInTwo) {
  // 8-ring: fail edge (0,1); the new shortest 0->1 route is the 7-hop arc,
  // which is NOT a shortest path in G, but splits into two shortest arcs
  // (<= 4 hops each).
  const Graph g = topo::make_ring(8);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  const Path backup = spf::shortest_path(
      g, 0, 1, FailureMask::of_edges({0}),
      spf::SpfOptions{.metric = spf::Metric::Hops});
  ASSERT_EQ(backup.hops(), 7u);
  const Decomposition d = greedy_decompose(set, backup);
  EXPECT_EQ(d.size(), 2u);  // Theorem 1: k=1 -> at most 2
  EXPECT_EQ(d.base_count(), 2u);
  EXPECT_EQ(d.joined(), backup);
}

TEST(GreedyDecompose, TrivialRoute) {
  const Graph g = topo::make_ring(4);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  AllPairsShortestBaseSet set(oracle);
  const Decomposition d = greedy_decompose(set, Path::trivial(2));
  EXPECT_TRUE(d.empty());
  EXPECT_THROW(greedy_decompose(set, Path{}), PreconditionError);
}

TEST(GreedyDecompose, LooseEdgeFallback) {
  // Weighted chain gadget: the epsilon edges are in no shortest path, so
  // greedy must emit them as non-base connectors.
  const auto gadget = topo::make_weighted_chain(2);
  spf::DistanceOracle oracle(gadget.g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet set(oracle);
  const Path backup = spf::shortest_path(
      gadget.g, gadget.s, gadget.t,
      FailureMask::of_edges(gadget.cheap_parallel_edges));
  const Decomposition d = greedy_decompose(set, backup);
  EXPECT_EQ(d.edge_count(), 2u);  // the two epsilon edges
  EXPECT_EQ(d.base_count(), 3u);  // the three cheap segments
  EXPECT_EQ(d.joined(), backup);
}

TEST(GreedyDecompose, CanonicalSetStillCovers) {
  Rng rng(31);
  const Graph g = topo::make_random_connected(30, 70, rng, 6);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet set(oracle);
  // Restoration route must be padded-canonical for maximal decomposability.
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const graph::EdgeId fail =
        static_cast<graph::EdgeId>(rng.below(g.num_edges()));
    const Path backup =
        spf::shortest_path(g, s, t, FailureMask::of_edges({fail}),
                           spf::SpfOptions{.padded = true});
    if (backup.empty()) continue;
    const Decomposition d = greedy_decompose(set, backup);
    EXPECT_EQ(d.joined(), backup);
    EXPECT_GE(d.size(), 1u);
  }
}

TEST(GreedyDecompose, GreedyIsOptimalForSubpathClosedSets) {
  // For the all-pairs set (subpath-closed), greedy longest-prefix yields
  // the minimum number of pieces. Verify against brute force on small
  // routes.
  Rng rng(37);
  const Graph g = topo::make_random_connected(16, 32, rng, 4);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  AllPairsShortestBaseSet set(oracle);

  auto brute_min_pieces = [&](const Path& route) {
    const std::size_t n = route.num_nodes();
    std::vector<std::size_t> best(n, SIZE_MAX);
    best[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (best[i] == SIZE_MAX) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        // single edges always allowed; base paths when members
        const bool ok = (j == i + 1) || set.contains(route.subpath(i, j));
        if (ok) best[j] = std::min(best[j], best[i] + 1);
      }
    }
    return best[n - 1];
  };

  for (int trial = 0; trial < 30; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const graph::EdgeId fail =
        static_cast<graph::EdgeId>(rng.below(g.num_edges()));
    const Path backup = spf::shortest_path(
        g, s, t, FailureMask::of_edges({fail}), spf::SpfOptions{.padded = true});
    if (backup.empty() || backup.hops() == 0) continue;
    const Decomposition d = greedy_decompose(set, backup);
    EXPECT_EQ(d.size(), brute_min_pieces(backup)) << backup.to_string();
  }
}

// --- overlay ------------------------------------------------------------------------

TEST(OverlayDecompose, FindsMinCostConcatenation) {
  const Graph g = topo::make_ring(8);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet set(oracle);
  const FailureMask mask = FailureMask::of_edges({0});  // (0,1) down
  const Decomposition d = overlay_decompose(set, mask, 0, 1);
  ASSERT_FALSE(d.empty());
  const Path joined = d.joined();
  EXPECT_EQ(joined.source(), 0u);
  EXPECT_EQ(joined.target(), 1u);
  EXPECT_EQ(joined.hops(), 7u);  // the surviving arc
  EXPECT_TRUE(joined.alive(g, mask));
  EXPECT_LE(d.size(), 3u);  // Theorem 2 with k=1: 2 paths + 1 edge
}

TEST(OverlayDecompose, UnreachableGivesEmpty) {
  const Graph g = topo::make_chain(3);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet set(oracle);
  const Decomposition d =
      overlay_decompose(set, FailureMask::of_edges({1}), 0, 2);
  EXPECT_TRUE(d.empty());
}

TEST(OverlayDecompose, MatchesDirectShortestPathCost) {
  Rng rng(41);
  const Graph g = topo::make_random_connected(24, 60, rng, 5);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet set(oracle);
  for (int trial = 0; trial < 15; ++trial) {
    const graph::EdgeId fail =
        static_cast<graph::EdgeId>(rng.below(g.num_edges()));
    const FailureMask mask = FailureMask::of_edges({fail});
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const graph::Weight direct = spf::distance(g, s, t, mask);
    const Decomposition d = overlay_decompose(set, mask, s, t);
    if (direct == graph::kUnreachable) {
      EXPECT_TRUE(d.empty());
      continue;
    }
    ASSERT_FALSE(d.empty());
    EXPECT_EQ(d.joined().cost(g), direct);
    EXPECT_TRUE(d.joined().alive(g, mask));
  }
}

TEST(OverlayDecompose, RejectsFailedEndpoints) {
  const Graph g = topo::make_ring(4);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  CanonicalBaseSet set(oracle);
  EXPECT_THROW(overlay_decompose(set, FailureMask::of_nodes({0}), 0, 2),
               PreconditionError);
}

TEST(OverlayDecompose, PiecesAreFlaggedCorrectly) {
  const auto gadget = topo::make_weighted_chain(1);
  spf::DistanceOracle oracle(gadget.g, FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet set(oracle);
  FailureMask mask = FailureMask::of_edges(gadget.cheap_parallel_edges);
  const Decomposition d = overlay_decompose(set, mask, gadget.s, gadget.t);
  ASSERT_FALSE(d.empty());
  // The epsilon edge must appear as a non-base connector.
  EXPECT_GE(d.edge_count(), 1u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.is_base[i]) {
      EXPECT_TRUE(set.contains(d.pieces[i]));
    }
  }
}

}  // namespace
}  // namespace rbpc::core
