// Assorted edge-case coverage: drill self-test (does it catch broken
// control planes?), SPF early-exit equivalence, merged-tree validation,
// generator determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "core/controller.hpp"
#include "spf/apsp.hpp"
#include "util/table.hpp"
#include "core/decompose.hpp"
#include "core/drill.hpp"
#include "mpls/network.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

// The drill must detect a control plane that fails to restore: wire it to a
// controller whose fail_link only breaks the data plane and never reroutes.
TEST(DrillSelfTest, CatchesNonRestoringControlPlane) {
  const Graph g = topo::make_ring(8);
  core::RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();

  graph::FailureMask shadow;  // mirrors what a correct plane would know
  core::DrillActions broken;
  broken.fail_link = [&](EdgeId e) {
    shadow.fail_edge(e);
    ctl.network().set_failures(shadow);  // data plane only: no FEC rewrite
  };
  broken.recover_link = [&](EdgeId e) {
    shadow.restore_edge(e);
    ctl.network().set_failures(shadow);
  };
  broken.send = [&](NodeId s, NodeId t) { return ctl.send(s, t); };
  broken.failures = [&]() -> const FailureMask& { return shadow; };

  Rng rng(401);
  core::DrillConfig cfg;
  cfg.steps = 20;
  cfg.recover_bias = 0.0;  // keep failures in place so probes hit them
  cfg.max_concurrent = 2;
  const auto report =
      core::run_failure_drill(g, spf::Metric::Hops, broken, cfg, rng);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.violations.size(), 0u);
}

// The drill must also detect wrong-cost (non-optimal) restorations.
TEST(DrillSelfTest, CatchesSuboptimalRoutes) {
  const Graph g = topo::make_ring(8);
  core::RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();

  core::DrillActions skewed;
  skewed.fail_link = [&](EdgeId e) { ctl.fail_link(e); };
  skewed.recover_link = [&](EdgeId e) { ctl.recover_link(e); };
  // Sabotage: probe answers come from a different (rotated) pair, so the
  // reported route usually has the wrong endpoints/cost.
  skewed.send = [&](NodeId s, NodeId t) {
    return ctl.send(t, s == 0 ? 1 : 0);
  };
  skewed.failures = [&]() -> const FailureMask& { return ctl.failures(); };

  Rng rng(403);
  core::DrillConfig cfg;
  cfg.steps = 10;
  const auto report =
      core::run_failure_drill(g, spf::Metric::Hops, skewed, cfg, rng);
  EXPECT_FALSE(report.ok());
}

TEST(SpfEarlyExit, StopAtMatchesFullRun) {
  Rng rng(405);
  const Graph g = topo::make_random_connected(50, 120, rng, 10);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const auto full = spf::shortest_tree(g, s);
    const auto early = spf::shortest_tree(
        g, s, FailureMask::none(), spf::SpfOptions{.stop_at = t});
    EXPECT_EQ(early.dist(t), full.dist(t));
    if (full.reachable(t)) {
      EXPECT_EQ(early.path_to(g, t).cost(g), full.path_to(g, t).cost(g));
    }
  }
}

TEST(SpfEarlyExit, BfsStopAtMatchesFullRun) {
  const Graph g = topo::make_grid(5, 5);
  const auto full = spf::shortest_tree(g, 0, FailureMask::none(),
                                       spf::SpfOptions{.metric = spf::Metric::Hops});
  const auto early = spf::shortest_tree(
      g, 0, FailureMask::none(),
      spf::SpfOptions{.metric = spf::Metric::Hops, .stop_at = 24});
  EXPECT_EQ(early.dist(24), full.dist(24));
}

TEST(MergedTreeValidation, RejectsBrokenParentChains) {
  const Graph g = topo::make_chain(3);
  mpls::Network net(g);
  std::vector<NodeId> parent(3, graph::kInvalidNode);
  std::vector<EdgeId> parent_edge(3, graph::kInvalidEdge);
  // Node 2 claims parent 1, but node 1 is not covered (no parent, not dest).
  parent[2] = 1;
  parent_edge[2] = 1;
  EXPECT_THROW(net.provision_merged_tree(0, parent, parent_edge),
               PreconditionError);
  // Parent without an edge is rejected too.
  std::vector<NodeId> p2(3, graph::kInvalidNode);
  std::vector<EdgeId> pe2(3, graph::kInvalidEdge);
  p2[1] = 0;
  EXPECT_THROW(net.provision_merged_tree(0, p2, pe2), PreconditionError);
  // Wrong array sizes.
  EXPECT_THROW(net.provision_merged_tree(0, {0}, {0}), PreconditionError);
}

TEST(Generators, WaxmanDeterministicPerSeed) {
  Rng a(407);
  Rng b(407);
  const Graph g1 = topo::make_waxman(50, 0.6, 0.3, a);
  const Graph g2 = topo::make_waxman(50, 0.6, 0.3, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
  }
}

TEST(Generators, IspDeterministicPerSeed) {
  Rng a(409);
  Rng b(409);
  const Graph g1 = topo::make_isp_like(a);
  const Graph g2 = topo::make_isp_like(b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).weight, g2.edge(e).weight);
  }
}

TEST(FailureMaskExtras, RemovedEdgeCountWithOverlap) {
  const Graph g = topo::make_ring(5);
  FailureMask m;
  m.fail_edge(0);   // (0,1)
  m.fail_node(1);   // kills (0,1) again and (1,2)
  EXPECT_EQ(m.removed_edge_count(g), 2u);
}

TEST(ApproxDiameter, ExactOnPathsAndRings) {
  // Double sweep is exact on trees: a chain of n nodes has diameter n-1.
  EXPECT_EQ(spf::approx_hop_diameter(topo::make_chain(10)), 9);
  // Rings: true diameter floor(n/2); double sweep reaches it.
  EXPECT_EQ(spf::approx_hop_diameter(topo::make_ring(10)), 5);
  EXPECT_EQ(spf::approx_hop_diameter(topo::make_ring(11)), 5);
}

TEST(ApproxDiameter, LowerBoundsTrueDiameterOnRandomGraphs) {
  Rng rng(411);
  const Graph g = topo::make_random_connected(30, 60, rng, 1);
  const auto approx = spf::approx_hop_diameter(g);
  // Exact via APSP on the hop metric.
  spf::ApspMatrix apsp(g, FailureMask::none(), spf::Metric::Hops);
  EXPECT_LE(approx, apsp.diameter());
  EXPECT_GE(approx, apsp.diameter() / 2);  // double-sweep guarantee
}

TEST(ApproxDiameter, RespectsMaskAndValidates) {
  const Graph g = topo::make_ring(8);
  // Failing one link turns the ring into a path: diameter 7.
  EXPECT_EQ(spf::approx_hop_diameter(g, FailureMask::of_edges({0})), 7);
  EXPECT_THROW(spf::approx_hop_diameter(g, FailureMask::none(), 0),
               PreconditionError);
}

TEST(TablePrinterExtras, SeparatorRendering) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  const std::string text = t.to_text();
  // Three rules: one under the header, one mid-table separator... rule
  // lines are dashes; count them.
  std::size_t rules = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) {
      ++rules;
    }
  }
  EXPECT_EQ(rules, 2u);
  // Markdown skips separators (invalid there).
  EXPECT_EQ(t.to_markdown().find("---|\n|---"), std::string::npos);
}

TEST(ControllerExtras, SendToSelfDeliversTrivially) {
  const Graph g = topo::make_ring(4);
  core::RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();
  // No FEC entry for (v, v); the network reports it rather than looping.
  const auto r = ctl.send(2, 2);
  EXPECT_EQ(r.status, mpls::ForwardStatus::NoFecEntry);
}

TEST(MplsExtras, IlmEntryToString) {
  mpls::IlmEntry swap_entry{{42}, 3, 0};
  EXPECT_EQ(swap_entry.to_string(), "pop, push 42, out if#3");
  mpls::IlmEntry pop_entry{{}, mpls::kLocalInterface, 0};
  EXPECT_EQ(pop_entry.to_string(), "pop, local");
  mpls::IlmEntry stack_entry{{7, 9}, mpls::kLocalInterface, 0};
  // Printed top-first: 9 then 7.
  EXPECT_EQ(stack_entry.to_string(), "pop, push 9 7, local");
}

TEST(GraphExtras, SummaryMentionsShape) {
  const Graph g = topo::make_ring(5);
  const std::string s = g.summary();
  EXPECT_NE(s.find("undirected"), std::string::npos);
  EXPECT_NE(s.find("5 nodes"), std::string::npos);
  EXPECT_NE(s.find("5 links"), std::string::npos);
}

TEST(DecompositionExtras, EmptyJoined) {
  core::Decomposition d;
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.joined().empty());
  EXPECT_EQ(d.base_count(), 0u);
  EXPECT_EQ(d.edge_count(), 0u);
}

}  // namespace
}  // namespace rbpc
