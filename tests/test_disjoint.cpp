// Unit + property tests for spf/disjoint (Suurballe/Bhandari pairs).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "graph/analysis.hpp"
#include "spf/disjoint.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::spf {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;
using graph::Weight;

bool edges_disjoint(const Path& a, const Path& b) {
  std::set<EdgeId> ea(a.edges().begin(), a.edges().end());
  return std::none_of(b.edges().begin(), b.edges().end(),
                      [&](EdgeId e) { return ea.contains(e); });
}

bool interior_nodes_disjoint(const Path& a, const Path& b) {
  std::set<NodeId> na;
  for (std::size_t i = 1; i + 1 < a.num_nodes(); ++i) na.insert(a.node(i));
  for (std::size_t i = 1; i + 1 < b.num_nodes(); ++i) {
    if (na.contains(b.node(i))) return false;
  }
  return true;
}

TEST(EdgeDisjoint, RingSplitsIntoBothArcs) {
  const Graph g = topo::make_ring(6);
  const DisjointPair dp = edge_disjoint_pair(g, 0, 3);
  ASSERT_TRUE(dp.connected());
  ASSERT_TRUE(dp.has_pair());
  EXPECT_TRUE(edges_disjoint(dp.primary, dp.secondary));
  EXPECT_EQ(dp.primary.hops() + dp.secondary.hops(), 6u);
  EXPECT_EQ(dp.total_cost(g), 6);
}

TEST(EdgeDisjoint, TrapDetourRequiresSuurballe) {
  // The classic trap: the shortest path blocks every disjoint alternative,
  // so the optimal pair avoids it. Graph: s=0, t=3.
  //   0-1 (1), 1-3 (1)  <- shortest path, cost 2
  //   0-2 (1), 2-3 (4)
  //   1-2 (1)
  // Greedy "shortest + disjoint second" would pick 0-1-3 and then
  // 0-2-3 (cost 5), total 7. Suurballe can also use 0-1-3 / 0-2-3 (no
  // cheaper interleaving exists here), but the trap variant below forces
  // rerouting through the 1-2 edge.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 3, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 3, 4);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  const DisjointPair dp = edge_disjoint_pair(g, 0, 3);
  ASSERT_TRUE(dp.has_pair());
  EXPECT_TRUE(edges_disjoint(dp.primary, dp.secondary));
  EXPECT_EQ(dp.total_cost(g), 7);
}

TEST(EdgeDisjoint, TrapWhereShortestPathMustBeAbandoned) {
  // s=0, t=4. Shortest path 0-2-4 (cost 2) uses the middle; the only
  // disjoint pair is {0-1-4, 0-3-4} (total 8). But a better pair exists
  // that reuses half of the shortest path? Construct so that the optimal
  // pair does NOT contain the shortest path:
  //   0-2 (1), 2-4 (1)   middle, cost 2
  //   0-1 (2), 1-4 (2)   upper, cost 4
  //   0-3 (2), 3-4 (2)   lower, cost 4
  //   1-2 (10), 2-3 (10)
  // Best disjoint pair: upper + lower (8) vs middle + (upper or lower) = 6.
  // middle and upper are edge-disjoint, so pair cost 6 wins and includes
  // the shortest path here. Now make the middle a shared bottleneck:
  GraphBuilder b(5);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 4, 1);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 4, 2);
  b.add_edge(0, 3, 2);
  b.add_edge(3, 4, 2);
  const Graph g = b.build();
  const DisjointPair dp = edge_disjoint_pair(g, 0, 4);
  ASSERT_TRUE(dp.has_pair());
  EXPECT_EQ(dp.total_cost(g), 6);
  EXPECT_EQ(dp.primary.cost(g), 2);  // the shortest path survives as primary
}

TEST(EdgeDisjoint, BridgeGraphHasNoPair) {
  const Graph g = topo::make_chain(4);
  const DisjointPair dp = edge_disjoint_pair(g, 0, 3);
  ASSERT_TRUE(dp.connected());
  EXPECT_FALSE(dp.has_pair());
  EXPECT_EQ(dp.primary.hops(), 3u);
}

TEST(EdgeDisjoint, DisconnectedGivesEmpty) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const DisjointPair dp = edge_disjoint_pair(g, 0, 3);
  EXPECT_FALSE(dp.connected());
}

TEST(EdgeDisjoint, RespectsFailureMask) {
  const Graph g = topo::make_ring(6);
  const DisjointPair dp = edge_disjoint_pair(g, 0, 3, FailureMask::of_edges({0}));
  ASSERT_TRUE(dp.connected());
  EXPECT_FALSE(dp.has_pair());  // the ring minus one link has no 2 disjoint
  EXPECT_FALSE(dp.primary.uses_edge(0));
}

TEST(EdgeDisjoint, ParallelEdgesFormAPair) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 3);
  b.add_edge(0, 1, 5);
  const Graph g = b.build();
  const DisjointPair dp = edge_disjoint_pair(g, 0, 1);
  ASSERT_TRUE(dp.has_pair());
  EXPECT_EQ(dp.total_cost(g), 8);
  EXPECT_TRUE(edges_disjoint(dp.primary, dp.secondary));
}

TEST(EdgeDisjoint, Validation) {
  const Graph g = topo::make_ring(4);
  EXPECT_THROW(edge_disjoint_pair(g, 0, 0), PreconditionError);
  EXPECT_THROW(edge_disjoint_pair(g, 0, 9), PreconditionError);
  EXPECT_THROW(edge_disjoint_pair(g, 0, 2, FailureMask::of_nodes({0})),
               PreconditionError);
}

TEST(NodeDisjoint, RingSplitsNodeDisjointly) {
  const Graph g = topo::make_ring(7);
  const DisjointPair dp = node_disjoint_pair(g, 0, 3);
  ASSERT_TRUE(dp.has_pair());
  EXPECT_TRUE(interior_nodes_disjoint(dp.primary, dp.secondary));
  EXPECT_TRUE(edges_disjoint(dp.primary, dp.secondary));
}

TEST(NodeDisjoint, EdgeDisjointButNotNodeDisjoint) {
  // Two triangles sharing a cut vertex 2: edge-disjoint 0->4 pairs exist
  // through 2, node-disjoint ones do not.
  GraphBuilder b(5);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 4, 1);
  b.add_edge(2, 4, 1);
  const Graph g = b.build();
  EXPECT_TRUE(edge_disjoint_pair(g, 0, 4).has_pair());
  const DisjointPair nd = node_disjoint_pair(g, 0, 4);
  ASSERT_TRUE(nd.connected());
  EXPECT_FALSE(nd.has_pair());
}

TEST(NodeDisjoint, AdjacentPairUsesDirectEdgePlusDetour) {
  const Graph g = topo::make_ring(5);
  const DisjointPair dp = node_disjoint_pair(g, 0, 1);
  ASSERT_TRUE(dp.has_pair());
  EXPECT_EQ(dp.primary.hops(), 1u);
  EXPECT_EQ(dp.secondary.hops(), 4u);
  EXPECT_TRUE(interior_nodes_disjoint(dp.primary, dp.secondary));
}

// Property sweep: on random 2-edge-connected-ish graphs, the pair is
// disjoint, its total cost is minimal (brute-force check on small n), and
// masks are respected.
class DisjointSweep : public ::testing::TestWithParam<int> {};

TEST_P(DisjointSweep, PairIsDisjointAndOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = topo::make_random_connected(10, 22, rng, 6);

  // Brute force: min over all edge-disjoint path pairs via enumeration of
  // first paths (DFS up to a hop bound) is expensive; instead validate
  // against a max-flow argument: the pair exists iff 2 edge-disjoint paths
  // exist, and optimality is spot-checked by comparing with
  // shortest + disjoint-second (Suurballe total must be <= greedy total).
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const DisjointPair dp = edge_disjoint_pair(g, s, t);
    if (!dp.connected()) continue;
    EXPECT_EQ(dp.primary.source(), s);
    EXPECT_EQ(dp.primary.target(), t);
    EXPECT_TRUE(dp.primary.alive(g, FailureMask::none()));
    if (!dp.has_pair()) continue;
    EXPECT_TRUE(edges_disjoint(dp.primary, dp.secondary));
    EXPECT_EQ(dp.secondary.source(), s);
    EXPECT_EQ(dp.secondary.target(), t);

    // Greedy comparison: shortest path, then shortest among edge-disjoint
    // complements.
    const Path sp = shortest_path(g, s, t);
    FailureMask block;
    for (EdgeId e : sp.edges()) block.fail_edge(e);
    const Path second = shortest_path(g, s, t, block);
    if (!second.empty()) {
      EXPECT_LE(dp.total_cost(g), sp.cost(g) + second.cost(g));
    }
    // The pair cannot beat the shortest path alone on the primary.
    EXPECT_GE(dp.primary.cost(g), sp.cost(g));

    // Node-disjoint pairs are also edge-disjoint and cost at least as much.
    const DisjointPair nd = node_disjoint_pair(g, s, t);
    if (nd.has_pair()) {
      EXPECT_TRUE(interior_nodes_disjoint(nd.primary, nd.secondary));
      EXPECT_TRUE(edges_disjoint(nd.primary, nd.secondary));
      EXPECT_GE(nd.total_cost(g), dp.total_cost(g));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DisjointSweep,
                         ::testing::Values(601, 602, 603, 604, 605, 606));

// Exact optimality: on tiny graphs, enumerate every simple-path pair and
// verify Suurballe's total cost is the true minimum over edge-disjoint
// pairs.
class DisjointExact : public ::testing::TestWithParam<int> {};

TEST_P(DisjointExact, TotalCostMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = topo::make_random_connected(7, 12, rng, 7);

  auto all_simple_paths = [&](NodeId s, NodeId t) {
    std::vector<Path> out;
    std::vector<NodeId> stack;
    std::vector<bool> used(g.num_nodes(), false);
    std::function<void(NodeId)> dfs = [&](NodeId v) {
      stack.push_back(v);
      used[v] = true;
      if (v == t) {
        out.push_back(Path::from_nodes(g, stack));
      } else {
        for (const graph::Arc& a : g.arcs(v)) {
          if (!used[a.to]) dfs(a.to);
        }
      }
      used[v] = false;
      stack.pop_back();
    };
    dfs(s);
    return out;
  };

  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = 4; t < 7; ++t) {
      const auto paths = all_simple_paths(s, t);
      graph::Weight best = graph::kUnreachable;
      for (std::size_t i = 0; i < paths.size(); ++i) {
        for (std::size_t j = i + 1; j < paths.size(); ++j) {
          if (!edges_disjoint(paths[i], paths[j])) continue;
          best = std::min(best, paths[i].cost(g) + paths[j].cost(g));
        }
      }
      const DisjointPair dp = edge_disjoint_pair(g, s, t);
      if (best == graph::kUnreachable) {
        EXPECT_FALSE(dp.has_pair()) << s << "->" << t;
      } else {
        ASSERT_TRUE(dp.has_pair()) << s << "->" << t;
        EXPECT_EQ(dp.total_cost(g), best) << s << "->" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TinyGraphs, DisjointExact,
                         ::testing::Values(801, 802, 803, 804, 805));

TEST(DisjointIsp, EveryPairOnTheIspBackboneHasAnEdgeDisjointPair) {
  Rng rng(77);
  const Graph g = topo::make_isp_like(rng);
  ASSERT_TRUE(graph::is_two_edge_connected(g));
  // 2-edge-connectivity guarantees a disjoint pair for every node pair
  // (Menger); verify on a sample.
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const DisjointPair dp = edge_disjoint_pair(g, s, t);
    EXPECT_TRUE(dp.has_pair()) << s << "->" << t;
  }
}

}  // namespace
}  // namespace rbpc::spf
