// Unit tests for src/lsdb: event queue, link-state DB views, flood timing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lsdb/event_queue.hpp"
#include "lsdb/lsdb.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"

namespace rbpc::lsdb {
namespace {

using graph::FailureMask;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule(1.0, [&] { ++fired; });
  });
  q.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(0.5, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule(-1.0, [] {}), PreconditionError);
}

TEST(EventQueue, RejectsNaNDelays) {
  // A NaN delay would silently corrupt the heap (NaN compares false against
  // everything), so both entry points must refuse it up front.
  EventQueue q;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(q.schedule(nan, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule_at(nan, [] {}), PreconditionError);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelDiscardsPendingEvent) {
  EventQueue q;
  int fired = 0;
  const auto keep = q.schedule(1.0, [&] { ++fired; });
  const auto drop = q.schedule(2.0, [&] { fired += 100; });
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_TRUE(q.cancel(drop));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.cancelled_pending(), 1u);
  q.run_all();
  EXPECT_EQ(fired, 1);
  // The clock must not have advanced to the cancelled event's time.
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_EQ(q.cancelled_pending(), 0u);
  (void)keep;
}

TEST(EventQueue, CancelIsSingleShot) {
  EventQueue q;
  const auto tok = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(tok));
  EXPECT_FALSE(q.cancel(tok));  // double cancel
  q.run_all();

  const auto fired = q.schedule(1.0, [] {});
  q.run_all();
  EXPECT_FALSE(q.cancel(fired));  // already fired
  EXPECT_FALSE(q.cancel(99999));  // never existed
}

TEST(Lsdb, GenerationsSuppressDuplicatesAndStaleLsas) {
  Lsdb db;
  EXPECT_TRUE(db.apply(LinkEvent{3, /*up=*/false, /*generation=*/2}));
  EXPECT_TRUE(db.knows_down(3));
  EXPECT_EQ(db.applied_generation(3), 2u);

  // A re-flooded copy of the same generation is discarded.
  EXPECT_FALSE(db.apply(LinkEvent{3, /*up=*/false, /*generation=*/2}));
  EXPECT_EQ(db.duplicates_discarded(), 1u);

  // A reordered older LSA must not roll the view back.
  EXPECT_FALSE(db.apply(LinkEvent{3, /*up=*/true, /*generation=*/1}));
  EXPECT_TRUE(db.knows_down(3));
  EXPECT_EQ(db.stale_discarded(), 1u);

  // Newer generations win.
  EXPECT_TRUE(db.apply(LinkEvent{3, /*up=*/true, /*generation=*/5}));
  EXPECT_FALSE(db.knows_down(3));
  EXPECT_EQ(db.applied_generation(3), 5u);
}

TEST(Lsdb, ViewTracksEvents) {
  Lsdb db;
  EXPECT_FALSE(db.knows_down(3));
  db.apply(LinkEvent{3, /*up=*/false});
  EXPECT_TRUE(db.knows_down(3));
  db.apply(LinkEvent{3, /*up=*/true});
  EXPECT_FALSE(db.knows_down(3));
}

TEST(Flood, AdjacentRoutersNotifiedFirst) {
  // Line 0-1-2-3; fail link (1,2) = edge 1.
  const auto g = topo::make_chain(4);
  FailureMask after = FailureMask::of_edges({1});
  FloodParams params{.link_delay = 1.0, .process_delay = 0.0,
                     .detect_delay = 0.0};
  const auto out = flood_notification_times(g, after, 1, 10.0, params);
  EXPECT_DOUBLE_EQ(out.notified_at[1], 10.0);
  EXPECT_DOUBLE_EQ(out.notified_at[2], 10.0);
  // 0 hears from 1 one link-delay later; the flood cannot cross the dead
  // link, so 3 hears from 2.
  EXPECT_DOUBLE_EQ(out.notified_at[0], 11.0);
  EXPECT_DOUBLE_EQ(out.notified_at[3], 11.0);
}

TEST(Flood, ProcessAndDetectDelaysAdd) {
  const auto g = topo::make_chain(3);
  FailureMask after = FailureMask::of_edges({0});
  FloodParams params{.link_delay = 2.0, .process_delay = 0.5,
                     .detect_delay = 0.25};
  const auto out = flood_notification_times(g, after, 0, 0.0, params);
  EXPECT_DOUBLE_EQ(out.notified_at[0], 0.25);
  EXPECT_DOUBLE_EQ(out.notified_at[1], 0.25);
  EXPECT_DOUBLE_EQ(out.notified_at[2], 0.25 + 0.5 + 2.0);
}

TEST(Flood, DisconnectedRoutersNeverNotified) {
  // Failing the only link between components isolates node 1 side... use a
  // 2-node graph: failing the single link leaves each endpoint aware (they
  // detect) but nothing else to notify.
  const auto g = topo::make_chain(2);
  FailureMask after = FailureMask::of_edges({0});
  const auto out = flood_notification_times(g, after, 0, 0.0, {});
  EXPECT_TRUE(std::isfinite(out.notified_at[0]));
  EXPECT_TRUE(std::isfinite(out.notified_at[1]));
}

TEST(Flood, IsolatedThirdPartyUnreachable) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = b.build();  // node 2 isolated
  const auto out =
      flood_notification_times(g, FailureMask::of_edges({0}), 0, 0.0, {});
  EXPECT_TRUE(std::isinf(out.notified_at[2]));
}

TEST(Flood, ScheduleFloodDrivesCallbacks) {
  const auto g = topo::make_ring(5);
  EventQueue q;
  FailureMask after = FailureMask::of_edges({0});
  std::vector<double> notified(g.num_nodes(), -1.0);
  schedule_flood(q, g, after, LinkEvent{0, false},
                 FloodParams{.link_delay = 1.0, .process_delay = 0.0,
                             .detect_delay = 0.0},
                 [&](graph::NodeId v, const LinkEvent& ev) {
                   EXPECT_EQ(ev.edge, 0u);
                   notified[v] = q.now();
                 });
  q.run_all();
  // Endpoints of edge 0 (nodes 0, 1) detect at t=0; the farthest router on
  // the surviving 4-link arc hears after 2 links.
  EXPECT_DOUBLE_EQ(notified[0], 0.0);
  EXPECT_DOUBLE_EQ(notified[1], 0.0);
  EXPECT_DOUBLE_EQ(notified[3], 2.0);
}

// ---------------------------------------------------------------------------
// Durable-state round-trip (the persistence plane's snapshot contract).
// ---------------------------------------------------------------------------

TEST(LsdbRecords, ExportImportRoundTripsViewAndGenerations) {
  Lsdb a;
  a.apply({0, false, 3});
  a.apply({2, false, 5});
  a.apply({2, true, 6});   // recovered: up but generation retained
  a.apply({7, false, 0});  // unsequenced: down with generation 0
  a.apply({4, true, 9});   // up edge with history

  const std::vector<LinkStateRecord> records = a.export_records();
  // Only touched edges appear, in edge order.
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].edge, 0u);
  EXPECT_TRUE(records[0].down);
  EXPECT_EQ(records[0].generation, 3u);
  EXPECT_EQ(records[1].edge, 2u);
  EXPECT_FALSE(records[1].down);
  EXPECT_EQ(records[1].generation, 6u);
  EXPECT_EQ(records[2].edge, 4u);
  EXPECT_EQ(records[3].edge, 7u);
  EXPECT_TRUE(records[3].down);
  EXPECT_EQ(records[3].generation, 0u);

  Lsdb b;
  EXPECT_EQ(b.import_records(records), records.size());
  for (graph::EdgeId e = 0; e < 10; ++e) {
    EXPECT_EQ(b.knows_down(e), a.knows_down(e)) << "edge " << e;
    EXPECT_EQ(b.applied_generation(e), a.applied_generation(e)) << "edge " << e;
  }
}

TEST(LsdbRecords, ImportIntoNonFreshViewKeepsNewestWins) {
  Lsdb live;
  live.apply({1, false, 8});  // the live view already learned a newer LSA
  Lsdb old;
  old.apply({1, false, 2});
  old.apply({3, false, 4});
  // Importing the stale snapshot must not regress edge 1, and must still
  // deliver edge 3's state.
  live.import_records(old.export_records());
  EXPECT_TRUE(live.knows_down(1));
  EXPECT_EQ(live.applied_generation(1), 8u);
  EXPECT_TRUE(live.knows_down(3));
  EXPECT_EQ(live.applied_generation(3), 4u);
}

TEST(LsdbRecords, EmptyViewExportsNothing) {
  Lsdb a;
  EXPECT_TRUE(a.export_records().empty());
  Lsdb b;
  EXPECT_EQ(b.import_records({}), 0u);
}

}  // namespace
}  // namespace rbpc::lsdb
