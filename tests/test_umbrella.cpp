// Compile-level check that the umbrella header exposes the whole public
// API coherently, plus a smoke test touching one symbol per layer.
#include "rbpc.hpp"

#include <gtest/gtest.h>

namespace rbpc {
namespace {

TEST(Umbrella, OneSymbolPerLayer) {
  Rng rng(1);                                             // util
  const graph::Graph g = topo::make_ring(5);              // topo + graph
  EXPECT_EQ(spf::distance(g, 0, 2), 2);                   // spf
  lsdb::EventQueue q;                                     // lsdb
  EXPECT_TRUE(q.empty());
  mpls::LabelStack stack;                                 // mpls
  stack.push(17);
  EXPECT_EQ(stack.top(), 17u);
  core::RbpcController ctl(g, spf::Metric::Hops);         // core
  ctl.provision();
  EXPECT_TRUE(ctl.send(0, 2).delivered());
}

}  // namespace
}  // namespace rbpc
