// Multi-failure restoration (|F| = k >= 2): the theorem-property harness.
//
// Sweeps the shared corpus under k-edge failure sets and SRLG cuts,
// asserting every restoration is lemma-clean (tests/theorem_props.hpp),
// that the Restorable restoration tiebreak never needs more pieces than
// the Arbitrary baseline, and that the Bodwin–Wang fault-tolerant base set
// never needs more pieces than the all-pairs set it contains. Also the
// home of the SPF tiebreak-policy bit-identity checks (scratch vs cache vs
// repair vs pool vs thread counts), the mixed-policy no-aliasing
// regressions for DistanceOracle / SnapshotTreePool, the SRLG scenario
// tests, and the seeded differential SPF fuzz with shrinking.
//
// Standalone binary: CI runs it under TSan and ASan/UBSan directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/srlg.hpp"
#include "chaos/storm.hpp"
#include "core/base_set.hpp"
#include "core/decompose.hpp"
#include "core/multi_failure.hpp"
#include "corpus.hpp"
#include "graph/failure.hpp"
#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "spf/metric.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "spf/tree.hpp"
#include "spf/tree_cache.hpp"
#include "spf/tree_pool.hpp"
#include "theorem_props.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rbpc {
namespace {

using core::AllPairsShortestBaseSet;
using core::FaultTolerantBaseSet;
using core::MultiFailureRestoration;
using core::RestoreTiebreak;
using core::restore_multi;
using graph::EdgeId;
using graph::FailureMask;
using graph::NodeId;
using spf::Metric;
using spf::SpfOptions;
using spf::TiebreakPolicy;
using rbpc::testing::check_restoration;
using rbpc::testing::corpus;
using rbpc::testing::lemma_bound;
using rbpc::testing::matches_reference;
using rbpc::testing::random_edge_failures;
using rbpc::testing::reference_dijkstra;
using rbpc::testing::theorem1_bound;
using rbpc::testing::TopoCase;
using rbpc::testing::trees_identical;

constexpr std::array<TiebreakPolicy, spf::kNumTiebreakPolicies> kPolicies = {
    TiebreakPolicy::Arbitrary, TiebreakPolicy::Lexicographic,
    TiebreakPolicy::Restorable};

/// Distinct endpoints sampled from the graph's nodes.
std::pair<NodeId, NodeId> random_pair(const graph::Graph& g, Rng& rng) {
  const auto picks = rng.sample_distinct(g.num_nodes(), 2);
  return {static_cast<NodeId>(picks[0]), static_cast<NodeId>(picks[1])};
}

std::size_t failed_edge_count(const FailureMask& mask) {
  return mask.failed_edges().size();
}

/// Runs both restoration tiebreaks for one (base, mask, s, t) instance and
/// checks the full multi-failure property bundle: both lemma-clean, costs
/// equal, Restorable never deeper than Arbitrary, both within the lemma
/// bound for the instance's failure count.
void expect_lemma_clean_pair(core::BasePathSet& base, const FailureMask& mask,
                             NodeId s, NodeId t, const std::string& context) {
  const graph::Graph& g = base.graph();
  const std::size_t k = failed_edge_count(mask);
  const MultiFailureRestoration arb =
      restore_multi(base, mask, s, t, RestoreTiebreak::Arbitrary);
  const MultiFailureRestoration res =
      restore_multi(base, mask, s, t, RestoreTiebreak::Restorable);
  ASSERT_EQ(arb.restored(), res.restored()) << context;
  if (!arb.restored()) {
    // Both tiebreaks refused: the failures must genuinely disconnect.
    EXPECT_EQ(spf::distance(g, s, t, mask, SpfOptions{.metric = base.metric()}),
              graph::kUnreachable)
        << context;
    return;
  }
  EXPECT_TRUE(check_restoration(base, mask, arb.route, arb.decomposition))
      << context << " [arbitrary]";
  EXPECT_TRUE(check_restoration(base, mask, res.route, res.decomposition))
      << context << " [restorable]";
  EXPECT_EQ(arb.cost, res.cost) << context;
  EXPECT_LE(res.stack_depth(), arb.stack_depth())
      << context << ": restorable tiebreak must never need more pieces";
  EXPECT_LE(arb.stack_depth(), lemma_bound(base.metric(), k)) << context;
  EXPECT_LE(res.stack_depth(), lemma_bound(base.metric(), k)) << context;
}

std::string trial_tag(const TopoCase& tc, std::size_t k, std::size_t trial,
                      const FailureMask& mask) {
  std::ostringstream os;
  os << tc.name << " k=" << k << " trial=" << trial << " failed={";
  for (const EdgeId e : mask.failed_edges()) os << e << ",";
  os << "}";
  return os.str();
}

// --- corpus-wide k-failure property sweeps -----------------------------------

TEST(MultiFailure, CorpusSweepUnweighted) {
  for (const TopoCase& tc : corpus()) {
    spf::DistanceOracle oracle(tc.g, FailureMask::none(), Metric::Hops);
    AllPairsShortestBaseSet base(oracle);
    Rng rng(0xF00D0000 ^ std::hash<std::string>{}(tc.name));
    for (const std::size_t k : {2u, 3u, 5u, 8u}) {
      for (std::size_t trial = 0; trial < 2; ++trial) {
        const FailureMask mask = random_edge_failures(tc.g, k, rng);
        const auto [s, t] = random_pair(tc.g, rng);
        expect_lemma_clean_pair(base, mask, s, t,
                                trial_tag(tc, k, trial, mask));
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(MultiFailure, CorpusSweepWeighted) {
  const auto cases = corpus();
  // Every third topology: the weighted sweep pays Theorem-2 loose-edge
  // probing per trial, and metric coverage does not need all 60 shapes.
  for (std::size_t i = 0; i < cases.size(); i += 3) {
    const TopoCase& tc = cases[i];
    spf::DistanceOracle oracle(tc.g, FailureMask::none(), Metric::Weighted);
    AllPairsShortestBaseSet base(oracle);
    Rng rng(0xBEEF0000 ^ std::hash<std::string>{}(tc.name));
    for (const std::size_t k : {2u, 4u, 8u}) {
      for (std::size_t trial = 0; trial < 2; ++trial) {
        const FailureMask mask = random_edge_failures(tc.g, k, rng);
        const auto [s, t] = random_pair(tc.g, rng);
        expect_lemma_clean_pair(base, mask, s, t,
                                trial_tag(tc, k, trial, mask));
        if (HasFatalFailure()) return;
      }
    }
  }
}

// The Bodwin–Wang 1-fault-tolerant set contains the all-pairs-shortest set,
// so its overlay restorations can never need more pieces — and its members
// must still verify as lemma-clean against its own membership test.
TEST(MultiFailure, FaultTolerantSetNeverDeeperThanAllPairs) {
  const auto cases = corpus();
  for (std::size_t i = 0; i < 10; ++i) {
    const TopoCase& tc = cases[i];
    spf::DistanceOracle oracle(tc.g, FailureMask::none(), Metric::Weighted);
    AllPairsShortestBaseSet ap(oracle);
    FaultTolerantBaseSet ft(oracle, /*max_failure_oracles=*/8);
    Rng rng(0xFACE ^ std::hash<std::string>{}(tc.name));
    for (const std::size_t k : {2u, 4u}) {
      for (std::size_t trial = 0; trial < 2; ++trial) {
        const FailureMask mask = random_edge_failures(tc.g, k, rng);
        const auto [s, t] = random_pair(tc.g, rng);
        const std::string tag = trial_tag(tc, k, trial, mask);
        const MultiFailureRestoration r_ap =
            restore_multi(ap, mask, s, t, RestoreTiebreak::Restorable);
        const MultiFailureRestoration r_ft =
            restore_multi(ft, mask, s, t, RestoreTiebreak::Restorable);
        ASSERT_EQ(r_ap.restored(), r_ft.restored()) << tag;
        if (!r_ap.restored()) continue;
        EXPECT_TRUE(check_restoration(ft, mask, r_ft.route,
                                      r_ft.decomposition))
            << tag << " [fault-tolerant]";
        EXPECT_EQ(r_ap.cost, r_ft.cost) << tag;
        EXPECT_LE(r_ft.stack_depth(), r_ap.stack_depth())
            << tag << ": the superset base set must never need more pieces";
        if (HasFatalFailure()) return;
      }
    }
    // Superset spot check: every all-pairs member is a fault-tolerant
    // member (a path shortest in G is trivially shortest in G, clause one).
    const graph::Path canon = oracle.canonical_path(0, static_cast<NodeId>(
                                                           tc.g.num_nodes() - 1));
    if (!canon.empty() && ap.contains(canon)) {
      EXPECT_TRUE(ft.contains(canon)) << tc.name;
    }
  }
}

// A 1-fault-tolerant member that is NOT shortest in G: the detour that
// becomes shortest only once the direct edge fails.
TEST(MultiFailure, FaultTolerantMembershipAcceptsReplacementPaths) {
  //   0 --(1)-- 1 --(1)-- 2      detour 0-1-2 costs 2,
  //    \________(1)______/       direct 0-2 costs 1.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const EdgeId direct = b.add_edge(0, 2, 1);
  const graph::Graph g = b.build();
  spf::DistanceOracle oracle(g, FailureMask::none(), Metric::Weighted);
  AllPairsShortestBaseSet ap(oracle);
  FaultTolerantBaseSet ft(oracle);
  const graph::Path detour = graph::Path::from_parts(g, {0, 1, 2}, {0, 1});
  EXPECT_FALSE(ap.contains(detour)) << "detour costs 2, direct costs 1";
  EXPECT_TRUE(ft.contains(detour))
      << "detour is shortest in G - {direct edge " << direct << "}";

  // Rejection needs edge-disjoint redundancy: with parallel direct twins,
  // no single failure ever makes the expensive detour shortest, so it must
  // stay out of the 1-fault-tolerant set.
  graph::GraphBuilder b2(3);
  b2.add_edge(0, 1, 5);
  b2.add_edge(1, 2, 5);
  b2.add_edge(0, 2, 1);
  b2.add_edge(0, 2, 1);  // the surviving twin under any single failure
  const graph::Graph g2 = b2.build();
  spf::DistanceOracle oracle2(g2, FailureMask::none(), Metric::Weighted);
  AllPairsShortestBaseSet ap2(oracle2);
  FaultTolerantBaseSet ft2(oracle2);
  const graph::Path junk = graph::Path::from_parts(g2, {0, 1, 2}, {0, 1});
  EXPECT_FALSE(ap2.contains(junk));
  EXPECT_FALSE(ft2.contains(junk))
      << "a path shortest in no single-failure puncturing is not a member";
}

// --- SRLG scenarios ----------------------------------------------------------

TEST(Srlg, ParallelSpanDiscovery) {
  const graph::Graph g = rbpc::testing::make_parallel_span_ladder(6);
  const auto groups = chaos::parallel_span_groups(g);
  ASSERT_EQ(groups.size(), 6u) << "one group per doubled rung";
  for (const chaos::SrlgGroup& grp : groups) {
    EXPECT_EQ(grp.kind, chaos::SrlgGroup::Kind::ParallelSpan);
    ASSERT_EQ(grp.edges.size(), 2u);
    const graph::Edge& a = g.edge(grp.edges[0]);
    const graph::Edge& b = g.edge(grp.edges[1]);
    EXPECT_EQ(std::minmax(a.u, a.v), std::minmax(b.u, b.v))
        << "span members must join the same router pair";
  }
  // A simple ladder (no doubled rungs) has no parallel spans.
  EXPECT_TRUE(chaos::parallel_span_groups(topo::make_grid(2, 6)).empty());
}

TEST(Srlg, RegionalGroupsRespectRadiusAndCap) {
  const graph::Graph g = topo::make_grid(4, 5);
  constexpr std::size_t kRadius = 2;
  constexpr std::size_t kMaxEdges = 5;
  Rng rng(77);
  const auto groups = chaos::regional_groups(g, 4, kRadius, rng, kMaxEdges);
  ASSERT_FALSE(groups.empty());
  for (const chaos::SrlgGroup& grp : groups) {
    EXPECT_EQ(grp.kind, chaos::SrlgGroup::Kind::Regional);
    ASSERT_NE(grp.center, graph::kInvalidNode);
    EXPECT_LE(grp.edges.size(), kMaxEdges);
    EXPECT_TRUE(std::is_sorted(grp.edges.begin(), grp.edges.end()));
    const spf::ShortestPathTree ball = spf::shortest_tree(
        g, grp.center, FailureMask::none(), SpfOptions{.metric = Metric::Hops});
    for (const EdgeId e : grp.edges) {
      EXPECT_LE(ball.dist(g.edge(e).u), kRadius) << "edge " << e;
      EXPECT_LE(ball.dist(g.edge(e).v), kRadius) << "edge " << e;
    }
  }
  // Deterministic per seed: replaying the same seed reproduces the catalog.
  Rng replay(77);
  const auto again = chaos::regional_groups(g, 4, kRadius, replay, kMaxEdges);
  ASSERT_EQ(groups.size(), again.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].center, again[i].center);
    EXPECT_EQ(groups[i].edges, again[i].edges);
  }
}

TEST(Srlg, SampleFailureIsAUnionOfGroups) {
  const graph::Graph g = rbpc::testing::make_parallel_span_ladder(8);
  Rng rng(123);
  const chaos::SrlgCatalog catalog = chaos::SrlgCatalog::discover(g, 3, 1, rng);
  ASSERT_FALSE(catalog.empty());
  std::set<EdgeId> member_edges;
  for (const chaos::SrlgGroup& grp : catalog.groups()) {
    member_edges.insert(grp.edges.begin(), grp.edges.end());
  }
  for (std::size_t trial = 0; trial < 5; ++trial) {
    const FailureMask mask = catalog.sample_failure(2, rng);
    const auto failed = mask.failed_edges();
    ASSERT_FALSE(failed.empty());
    for (const EdgeId e : failed) {
      EXPECT_TRUE(member_edges.count(e))
          << "failed edge " << e << " belongs to no shared-risk group";
    }
  }
}

// The point of SRLG scenarios: correlated cuts are still restorable and
// still lemma-clean — sweep every SRLG-prone corpus shape under sampled
// group unions with both restoration tiebreaks.
TEST(Srlg, RestorationUnderCorrelatedCuts) {
  for (const TopoCase& tc : corpus()) {
    Rng rng(0x5A1A ^ std::hash<std::string>{}(tc.name));
    const chaos::SrlgCatalog catalog =
        chaos::SrlgCatalog::discover(tc.g, 2, 2, rng, /*max_edges=*/6);
    if (catalog.empty()) continue;
    spf::DistanceOracle oracle(tc.g, FailureMask::none(), Metric::Hops);
    AllPairsShortestBaseSet base(oracle);
    for (std::size_t trial = 0; trial < 3; ++trial) {
      const FailureMask mask = catalog.sample_failure(2, rng);
      const auto [s, t] = random_pair(tc.g, rng);
      std::ostringstream tag;
      tag << tc.name << " srlg trial=" << trial;
      expect_lemma_clean_pair(base, mask, s, t, tag.str());
      if (HasFatalFailure()) return;
    }
  }
}

TEST(Storm, SrlgGroupsFailAtomically) {
  const graph::Graph g = rbpc::testing::make_parallel_span_ladder(6);
  Rng discover_rng(9);
  const chaos::SrlgCatalog catalog =
      chaos::SrlgCatalog::discover(g, 0, 1, discover_rng);
  ASSERT_FALSE(catalog.empty());
  chaos::StormConfig config;
  config.events = 60;
  config.max_concurrent = 6;
  config.recover_bias = 0.3;
  config.srlg_groups = catalog.edge_lists();
  config.srlg_bias = 0.9;
  Rng rng(4242);
  const chaos::Storm storm = chaos::plan_storm(g, config, rng);

  // Group the truth stream's down transitions by timestamp; at least one
  // timestamp must carry an entire group going down as one unit.
  std::map<double, std::set<EdgeId>> downs_at;
  for (const chaos::StormEvent& ev : storm.truth) {
    if (!ev.event.up) downs_at[ev.at].insert(ev.event.edge);
  }
  std::size_t atomic_group_cuts = 0;
  for (const auto& [at, edges] : downs_at) {
    for (const auto& group : config.srlg_groups) {
      const std::set<EdgeId> want(group.begin(), group.end());
      if (want.size() >= 2 &&
          std::includes(edges.begin(), edges.end(), want.begin(),
                        want.end())) {
        ++atomic_group_cuts;
        break;
      }
    }
  }
  EXPECT_GE(atomic_group_cuts, 1u)
      << "with srlg_bias=0.9 the plan must contain whole-group cuts";

  // Determinism: replaying the seed reproduces the storm byte for byte.
  Rng replay(4242);
  const chaos::Storm again = chaos::plan_storm(g, config, replay);
  ASSERT_EQ(storm.truth.size(), again.truth.size());
  for (std::size_t i = 0; i < storm.truth.size(); ++i) {
    EXPECT_EQ(storm.truth[i].at, again.truth[i].at);
    EXPECT_EQ(storm.truth[i].event.edge, again.truth[i].event.edge);
    EXPECT_EQ(storm.truth[i].event.up, again.truth[i].event.up);
    EXPECT_EQ(storm.truth[i].event.generation, again.truth[i].event.generation);
  }
}

// srlg_bias = 0 must leave storm planning bit-identical to a group-free
// config: the SRLG branch consumes no randomness when disabled.
TEST(Storm, ZeroSrlgBiasIsBitIdenticalToSeedStorms) {
  const graph::Graph g = rbpc::testing::make_parallel_span_ladder(6);
  Rng discover_rng(9);
  const chaos::SrlgCatalog catalog =
      chaos::SrlgCatalog::discover(g, 2, 1, discover_rng);
  chaos::StormConfig plain;
  plain.events = 40;
  chaos::StormConfig with_groups = plain;
  with_groups.srlg_groups = catalog.edge_lists();
  with_groups.srlg_bias = 0.0;

  Rng rng_a(777);
  Rng rng_b(777);
  const chaos::Storm a = chaos::plan_storm(g, plain, rng_a);
  const chaos::Storm b = chaos::plan_storm(g, with_groups, rng_b);
  ASSERT_EQ(a.truth.size(), b.truth.size());
  for (std::size_t i = 0; i < a.truth.size(); ++i) {
    EXPECT_EQ(a.truth[i].at, b.truth[i].at);
    EXPECT_EQ(a.truth[i].event.edge, b.truth[i].event.edge);
    EXPECT_EQ(a.truth[i].event.up, b.truth[i].event.up);
    EXPECT_EQ(a.truth[i].event.generation, b.truth[i].event.generation);
  }
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].at, b.deliveries[i].at);
    EXPECT_EQ(a.deliveries[i].event.edge, b.deliveries[i].event.edge);
  }
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.duplicated, b.duplicated);
}

// --- tiebreak policy semantics ----------------------------------------------

// Restorable tiebreaking is hop-dominant: among equal-cost routes it picks
// the one with fewer hops (fewer hops = fewer potential pieces).
TEST(Tiebreak, RestorablePrefersFewerHopsAmongTies) {
  //  0 --1-- 1 --1-- 2 --1-- 3 --1-- 4    chain, cost 4, 4 hops
  //  0 ------2------ 2 ------2------ 4    shortcuts, cost 4, 2 hops
  graph::GraphBuilder b(5);
  for (NodeId v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1, 1);
  b.add_edge(0, 2, 2);
  b.add_edge(2, 4, 2);
  const graph::Graph g = b.build();
  const SpfOptions restorable{.metric = Metric::Weighted,
                              .padded = true,
                              .tiebreak = TiebreakPolicy::Restorable};
  const spf::ShortestPathTree tree = spf::shortest_tree(g, 0, {}, restorable);
  EXPECT_EQ(tree.dist(4), 4u);
  EXPECT_EQ(tree.hops(4), 2u) << "restorable tiebreak must take the shortcuts";
  EXPECT_EQ(tree.hops(2), 1u);
  EXPECT_EQ(tree.tiebreak(), TiebreakPolicy::Restorable);
}

// Lexicographic tiebreaking resolves parallel-edge ties towards the lowest
// edge id — stable under re-seeding, unlike the Arbitrary salts.
TEST(Tiebreak, LexicographicPrefersLowerEdgeIds) {
  graph::GraphBuilder b(2);
  const EdgeId first = b.add_edge(0, 1, 1);
  b.add_edge(0, 1, 1);  // the parallel twin
  const graph::Graph g = b.build();
  const graph::Path p = spf::shortest_path(
      g, 0, 1, {},
      SpfOptions{.metric = Metric::Weighted,
                 .padded = true,
                 .tiebreak = TiebreakPolicy::Lexicographic});
  ASSERT_EQ(p.hops(), 1u);
  EXPECT_EQ(p.edges().front(), first);
}

// Unpadded runs have no tie to break: the recorded policy normalizes to
// Arbitrary so flavor comparisons cannot distinguish salt schemes that
// never influenced the tree.
TEST(Tiebreak, UnpaddedTreesNormalizeToArbitrary) {
  const graph::Graph g = rbpc::testing::make_dual_plane_core(6);
  const spf::ShortestPathTree a = spf::shortest_tree(
      g, 0, {},
      SpfOptions{.metric = Metric::Weighted,
                 .padded = false,
                 .tiebreak = TiebreakPolicy::Restorable});
  const spf::ShortestPathTree b = spf::shortest_tree(
      g, 0, {},
      SpfOptions{.metric = Metric::Weighted,
                 .padded = false,
                 .tiebreak = TiebreakPolicy::Lexicographic});
  EXPECT_EQ(a.tiebreak(), TiebreakPolicy::Arbitrary);
  EXPECT_TRUE(trees_identical(a, b));
}

// --- bit-identity across compute paths ---------------------------------------

// Every way of obtaining a tree for one (mask, policy) flavor — scratch
// SPF, from-scratch TreeCache, repair-mode TreeCache, SnapshotTreePool —
// must produce the identical tree, for every tiebreak policy.
TEST(Tiebreak, BitIdenticalAcrossComputePaths) {
  const auto cases = corpus();
  for (std::size_t i = 0; i < cases.size(); i += 10) {
    const TopoCase& tc = cases[i];
    Rng rng(0x1DE ^ std::hash<std::string>{}(tc.name));
    const FailureMask mask = random_edge_failures(tc.g, 2, rng);
    for (const TiebreakPolicy policy : kPolicies) {
      const SpfOptions options{
          .metric = Metric::Weighted, .padded = true, .tiebreak = policy};
      spf::TreeCache scratch_cache(tc.g, mask, options);
      spf::TreeCache base_cache(tc.g, FailureMask::none(), options);
      spf::TreeCache repair_cache(tc.g, mask, options, {}, &base_cache);
      spf::SnapshotTreePool pool(tc.g, options);
      for (std::size_t pick = 0; pick < 2; ++pick) {
        const NodeId s =
            static_cast<NodeId>(rng.below(tc.g.num_nodes()));
        const spf::ShortestPathTree want =
            spf::shortest_tree(tc.g, s, mask, options);
        EXPECT_TRUE(matches_reference(
            want, reference_dijkstra(tc.g, s, mask, options)))
            << tc.name << " policy=" << to_string(policy) << " s=" << s;
        EXPECT_TRUE(trees_identical(want, *scratch_cache.tree(s)))
            << tc.name << " [scratch cache] policy=" << to_string(policy);
        EXPECT_TRUE(trees_identical(want, *repair_cache.tree(s)))
            << tc.name << " [repair cache] policy=" << to_string(policy);
        EXPECT_TRUE(trees_identical(want, *pool.cache_for(mask)->tree(s)))
            << tc.name << " [tree pool] policy=" << to_string(policy);
      }
    }
  }
}

// Thread count must never change a tree: all-source builds through a
// ThreadPool equal the serial builds, node for node, for the tie-heaviest
// corpus shape under the Restorable policy.
TEST(Tiebreak, BitIdenticalAcrossThreadCounts) {
  const graph::Graph g = rbpc::testing::make_dual_plane_core(8);
  const SpfOptions options{.metric = Metric::Weighted,
                           .padded = true,
                           .tiebreak = TiebreakPolicy::Restorable};
  std::vector<spf::ShortestPathTree> serial;
  serial.reserve(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    serial.push_back(spf::shortest_tree(g, s, {}, options));
  }
  for (const std::size_t threads : {2u, 4u}) {
    std::vector<std::unique_ptr<spf::ShortestPathTree>> parallel(
        g.num_nodes());
    ThreadPool pool(threads);
    pool.parallel_for(g.num_nodes(), [&](std::size_t s) {
      parallel[s] = std::make_unique<spf::ShortestPathTree>(spf::shortest_tree(
          g, static_cast<NodeId>(s), {}, options));
    });
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      EXPECT_TRUE(trees_identical(serial[s], *parallel[s]))
          << "threads=" << threads << " source=" << s;
    }
  }
}

// --- mixed-policy no-aliasing (oracle + pool) --------------------------------

// Querying several policies through one DistanceOracle must never hand one
// policy's canonical tree to another — interleaved queries keep answering
// exactly what a policy-pure oracle answers.
TEST(Oracle, MixedPolicyQueriesNeverAlias) {
  std::size_t divergent_pairs = 0;
  for (const char* name :
       {"span_ladder6", "dual_plane6", "dual_plane8", "ring_of_rings3x5"}) {
    const auto cases = corpus();
    const auto it = std::find_if(cases.begin(), cases.end(),
                                 [&](const TopoCase& c) {
                                   return c.name == name;
                                 });
    ASSERT_NE(it, cases.end());
    const graph::Graph& g = it->g;
    spf::DistanceOracle mixed(g, FailureMask::none(), Metric::Weighted);
    // Policy-pure oracles as ground truth.
    std::array<std::unique_ptr<spf::DistanceOracle>, 3> pure;
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
      pure[p] = std::make_unique<spf::DistanceOracle>(
          g, FailureMask::none(), Metric::Weighted, 0, 0, kPolicies[p]);
    }
    Rng rng(0xA11A5 ^ std::hash<std::string>{}(it->name));
    for (std::size_t trial = 0; trial < 6; ++trial) {
      const auto [u, v] = random_pair(g, rng);
      std::array<graph::Path, 3> got;
      // Interleave: all policies against the shared oracle back to back.
      for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        got[p] = mixed.canonical_path(u, v, kPolicies[p]);
      }
      for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        EXPECT_EQ(got[p], pure[p]->canonical_path(u, v))
            << it->name << " " << to_string(kPolicies[p]) << " " << u << "->"
            << v;
        EXPECT_EQ(mixed.padded_tree(u, kPolicies[p]).tiebreak(), kPolicies[p]);
        // The mixed oracle must also agree that its own answer is canonical
        // under the same policy (and membership is policy-scoped).
        EXPECT_TRUE(mixed.is_canonical(got[p].view(), kPolicies[p]));
      }
      if (got[0] != got[1] || got[1] != got[2] || got[0] != got[2]) {
        ++divergent_pairs;
      }
    }
  }
  // The regression must bite: on these tie-heavy shapes the policies must
  // actually disagree somewhere, otherwise aliasing would be invisible.
  EXPECT_GE(divergent_pairs, 1u);
}

// Count-bound eviction is per policy cache, and a re-queried evicted tree
// comes back bit-identical — eviction churn across policies never corrupts
// answers.
TEST(Oracle, EvictionAcrossPolicyCachesStaysCorrect) {
  const graph::Graph g = rbpc::testing::make_dual_plane_core(6);
  spf::DistanceOracle oracle(g, FailureMask::none(), Metric::Weighted,
                             /*max_cached_trees=*/1);
  const auto expect_fresh = [&](NodeId u, TiebreakPolicy policy) {
    const SpfOptions options{
        .metric = Metric::Weighted, .padded = true, .tiebreak = policy};
    EXPECT_TRUE(trees_identical(spf::shortest_tree(g, u, {}, options),
                                oracle.padded_tree(u, policy)))
        << "u=" << u << " policy=" << to_string(policy);
  };
  // Each policy's cache holds one tree; rotating sources within a policy
  // forces eviction, rotating policies must not (separate caches).
  for (std::size_t round = 0; round < 3; ++round) {
    for (const TiebreakPolicy policy : kPolicies) {
      expect_fresh(static_cast<NodeId>(round), policy);
      expect_fresh(static_cast<NodeId>(round + 3), policy);
    }
  }
  const std::size_t runs_after_churn = oracle.spf_runs();
  EXPECT_GT(runs_after_churn, kPolicies.size())
      << "max_cached_trees=1 must have evicted and recomputed";
  // Re-querying the newest tree of each policy is a pure cache hit.
  for (const TiebreakPolicy policy : kPolicies) {
    oracle.padded_tree(static_cast<NodeId>(2 + 3), policy);
  }
  EXPECT_EQ(oracle.spf_runs(), runs_after_churn);
}

// Byte-bound eviction spans all policy caches but must always keep the
// newest tree — and survivors keep answering correctly.
TEST(Oracle, ByteBoundEvictionSpansPolicyCaches) {
  const graph::Graph g = rbpc::testing::make_dual_plane_core(6);
  const std::size_t one_tree_bytes =
      spf::shortest_tree(g, 0, {},
                         SpfOptions{.metric = Metric::Weighted, .padded = true})
          .memory_bytes();
  spf::DistanceOracle oracle(g, FailureMask::none(), Metric::Weighted,
                             /*max_cached_trees=*/0,
                             /*max_cached_bytes=*/one_tree_bytes);
  for (std::size_t round = 0; round < 2; ++round) {
    for (const TiebreakPolicy policy : kPolicies) {
      const NodeId u = static_cast<NodeId>(round);
      const SpfOptions options{
          .metric = Metric::Weighted, .padded = true, .tiebreak = policy};
      EXPECT_TRUE(trees_identical(spf::shortest_tree(g, u, {}, options),
                                  oracle.padded_tree(u, policy)));
      EXPECT_LE(oracle.cached_trees(), 1u)
          << "byte bound of one tree must evict down to the newest";
    }
  }
}

// The pool's view key includes the tiebreak policy: same mask, different
// policies, different TreeCaches — and an evicted view keeps working
// through its surviving shared_ptr.
TEST(TreePool, PolicyIsPartOfTheViewKey) {
  const graph::Graph g = rbpc::testing::make_dual_plane_core(6);
  const SpfOptions options{.metric = Metric::Weighted,
                           .padded = true,
                           .tiebreak = TiebreakPolicy::Arbitrary};
  spf::SnapshotTreePool pool(g, options,
                             spf::TreePoolOptions{.max_views = 2});
  const FailureMask mask = FailureMask::of_edges({0});

  const auto arb = pool.cache_for(mask, TiebreakPolicy::Arbitrary);
  const auto res = pool.cache_for(mask, TiebreakPolicy::Restorable);
  EXPECT_NE(arb.get(), res.get())
      << "one mask, two policies must be two distinct views";
  EXPECT_EQ(pool.views_created(), 2u);
  EXPECT_EQ(pool.cache_for(mask, TiebreakPolicy::Arbitrary).get(), arb.get());
  EXPECT_EQ(pool.view_hits(), 1u);

  // Each view's trees carry its policy and match scratch SPF.
  for (const auto& [view, policy] :
       {std::pair{arb, TiebreakPolicy::Arbitrary},
        std::pair{res, TiebreakPolicy::Restorable}}) {
    SpfOptions want_options = options;
    want_options.tiebreak = policy;
    EXPECT_TRUE(trees_identical(
        spf::shortest_tree(g, 2, mask, want_options), *view->tree(2)))
        << to_string(policy);
  }

  // A third distinct view evicts the LRU one; the held pointer survives.
  const FailureMask other = FailureMask::of_edges({1});
  pool.cache_for(other, TiebreakPolicy::Arbitrary);
  EXPECT_EQ(pool.views_evicted(), 1u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(trees_identical(
      spf::shortest_tree(g, 3, mask, options), *arb->tree(3)))
      << "evicted view must stay usable through the shared_ptr";
}

// --- differential SPF fuzz (seeded, shrinking) -------------------------------

/// One fuzz instance: an edge list (multi-edges welcome — they are the tie
/// generators), a failed subset, a source, and the SPF options under test.
struct FuzzCase {
  std::size_t num_nodes = 0;
  struct E {
    NodeId u, v;
    graph::Weight w;
    bool failed;
  };
  std::vector<E> edges;
  NodeId source = 0;
  SpfOptions options;

  graph::Graph build_graph() const {
    graph::GraphBuilder b(num_nodes);
    for (const E& e : edges) b.add_edge(e.u, e.v, e.w);
    return b.build();
  }
  FailureMask build_mask() const {
    FailureMask mask;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].failed) mask.fail_edge(static_cast<EdgeId>(i));
    }
    return mask;
  }
  std::string describe() const {
    std::ostringstream os;
    os << "n=" << num_nodes << " source=" << source
       << " policy=" << to_string(options.tiebreak) << " edges=[";
    for (const E& e : edges) {
      os << "(" << e.u << "," << e.v << ",w" << e.w
         << (e.failed ? ",DOWN" : "") << ")";
    }
    os << "]";
    return os.str();
  }
};

/// True when scratch SPF or repair-mode TreeCache diverges from the
/// reference Dijkstra on this instance.
bool fuzz_mismatch(const FuzzCase& c) {
  const graph::Graph g = c.build_graph();
  const FailureMask mask = c.build_mask();
  const auto ref = reference_dijkstra(g, c.source, mask, c.options);
  const spf::ShortestPathTree scratch =
      spf::shortest_tree(g, c.source, mask, c.options);
  if (!matches_reference(scratch, ref)) return true;
  spf::TreeCache base(g, FailureMask::none(), c.options);
  spf::TreeCache view(g, mask, c.options, {}, &base);
  return !matches_reference(*view.tree(c.source), ref);
}

/// Greedy shrink: repeatedly drop any edge whose removal preserves the
/// mismatch, until no single removal does.
FuzzCase shrink_fuzz_case(FuzzCase c) {
  bool shrunk = true;
  while (shrunk && c.edges.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < c.edges.size(); ++i) {
      FuzzCase candidate = c;
      candidate.edges.erase(candidate.edges.begin() + i);
      if (fuzz_mismatch(candidate)) {
        c = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return c;
}

TEST(Fuzz, DifferentialSpfVsReferenceDijkstra) {
  Rng rng(0xD1FF);
  for (std::size_t iter = 0; iter < 200; ++iter) {
    FuzzCase c;
    c.num_nodes = 4 + rng.below(12);
    const std::size_t num_edges = c.num_nodes + rng.below(2 * c.num_nodes);
    // Half the instances are tie-heavy (unit weights), half weighted.
    const graph::Weight max_w = (iter % 2 == 0) ? 1 : 7;
    for (std::size_t i = 0; i < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng.below(c.num_nodes));
      const NodeId v = static_cast<NodeId>(rng.below(c.num_nodes));
      if (u == v) continue;  // builder rejects self-loops
      c.edges.push_back({u, v,
                         static_cast<graph::Weight>(1 + rng.below(max_w)),
                         /*failed=*/rng.chance(0.15)});
    }
    if (c.edges.empty()) continue;
    c.source = static_cast<NodeId>(rng.below(c.num_nodes));
    c.options = SpfOptions{
        .metric = (iter % 3 == 0) ? Metric::Hops : Metric::Weighted,
        .padded = true,
        .tiebreak = kPolicies[iter % kPolicies.size()]};
    if (fuzz_mismatch(c)) {
      const FuzzCase minimal = shrink_fuzz_case(c);
      FAIL() << "SPF diverged from reference Dijkstra; minimal reproducer: "
             << minimal.describe();
    }
  }
}

}  // namespace
}  // namespace rbpc
