// Unit + property tests for spf/yen (k shortest loopless paths).
#include <gtest/gtest.h>

#include <set>

#include "spf/spf.hpp"
#include "spf/yen.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::spf {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;

TEST(Yen, FirstPathIsShortest) {
  const Graph g = topo::make_grid(3, 3);
  const auto paths = k_shortest_paths(g, 0, 8, 3, FailureMask::none(),
                                      Metric::Hops);
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 4u);
  EXPECT_EQ(static_cast<graph::Weight>(paths[0].hops()),
            distance(g, 0, 8, FailureMask::none(),
                     SpfOptions{.metric = Metric::Hops}));
}

TEST(Yen, PathsAreDistinctLooplessAndSorted) {
  const Graph g = topo::make_grid(3, 4);
  const auto paths = k_shortest_paths(g, 0, 11, 8, FailureMask::none(),
                                      Metric::Hops);
  EXPECT_EQ(paths.size(), 8u);
  std::set<std::vector<NodeId>> seen;
  graph::Weight prev = 0;
  for (const Path& p : paths) {
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.target(), 11u);
    EXPECT_TRUE(p.simple());
    EXPECT_TRUE(seen.insert(p.nodes()).second) << p.to_string();
    const auto cost = static_cast<graph::Weight>(p.hops());
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(Yen, GridCornerHasSixShortest) {
  // 3x3 grid corner-to-corner: C(4,2) = 6 monotone shortest routes of 4
  // hops; the 7th cheapest must be longer.
  const Graph g = topo::make_grid(3, 3);
  const auto paths = k_shortest_paths(g, 0, 8, 7, FailureMask::none(),
                                      Metric::Hops);
  ASSERT_EQ(paths.size(), 7u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(paths[i].hops(), 4u);
  EXPECT_GT(paths[6].hops(), 4u);
}

TEST(Yen, ExhaustsSmallPathSpace) {
  // A 4-ring has exactly 2 loopless 0->2 paths.
  const Graph g = topo::make_ring(4);
  const auto paths = k_shortest_paths(g, 0, 2, 10, FailureMask::none(),
                                      Metric::Hops);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(Yen, RespectsFailureMask) {
  const Graph g = topo::make_ring(6);
  const auto paths =
      k_shortest_paths(g, 0, 3, 5, FailureMask::of_edges({0}), Metric::Hops);
  ASSERT_EQ(paths.size(), 1u);  // only the long way remains loopless
  EXPECT_FALSE(paths[0].uses_edge(0));
}

TEST(Yen, DisconnectedGivesEmpty) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 3).empty());
}

TEST(Yen, WeightedOrdering) {
  // Diamond: 0-1 (1), 1-3 (1), 0-2 (2), 2-3 (2), 1-2 (1).
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 3, 1);
  b.add_edge(0, 2, 2);
  b.add_edge(2, 3, 2);
  b.add_edge(1, 2, 1);
  const Graph g = b.build();
  const auto paths = k_shortest_paths(g, 0, 3, 4);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths[0].cost(g), 2);  // 0-1-3
  EXPECT_EQ(paths[1].cost(g), 4);  // 0-2-3, 0-1-2-3 and 0-2-1-3 all cost 4
  EXPECT_EQ(paths[2].cost(g), 4);
  EXPECT_EQ(paths[3].cost(g), 4);
}

TEST(Yen, DeterministicAcrossCalls) {
  Rng rng(91);
  const Graph g = topo::make_random_connected(20, 45, rng, 7);
  const auto a = k_shortest_paths(g, 1, 17, 6);
  const auto b = k_shortest_paths(g, 1, 17, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Yen, Validation) {
  const Graph g = topo::make_ring(4);
  EXPECT_THROW(k_shortest_paths(g, 0, 0, 3), PreconditionError);
  EXPECT_THROW(k_shortest_paths(g, 0, 1, 0), PreconditionError);
  EXPECT_THROW(k_shortest_paths(g, 0, 7, 3), PreconditionError);
}

class YenSweep : public ::testing::TestWithParam<int> {};

TEST_P(YenSweep, CostsNondecreasingAndCountCorrect) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = topo::make_random_connected(14, 30, rng, 9);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == t) continue;
    const auto paths = k_shortest_paths(g, s, t, 5);
    graph::Weight prev = 0;
    std::set<std::vector<NodeId>> seen;
    for (const Path& p : paths) {
      EXPECT_TRUE(p.simple());
      EXPECT_GE(p.cost(g), prev);
      prev = p.cost(g);
      EXPECT_TRUE(seen.insert(p.nodes()).second);
    }
    if (!paths.empty()) {
      EXPECT_EQ(paths[0].cost(g), distance(g, s, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, YenSweep,
                         ::testing::Values(701, 702, 703, 704));

}  // namespace
}  // namespace rbpc::spf
