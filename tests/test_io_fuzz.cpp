// Property fuzz: graph serialization round-trips across generator families
// and failure-mask states compose as expected.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/io.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::graph {
namespace {

void expect_same(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.directed(), b.directed());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).weight, b.edge(e).weight);
  }
}

Graph round_trip(const Graph& g) {
  std::stringstream ss;
  save_graph(ss, g);
  return load_graph(ss);
}

class IoFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IoFuzz, RandomGraphsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + rng.below(60);
  const std::size_t max_edges = n * (n - 1) / 2;
  const std::size_t edges = std::min(n - 1 + rng.below(2 * n), max_edges);
  const Graph g = topo::make_random_connected(
      n, edges, rng, static_cast<Weight>(1 + rng.below(1000)));
  expect_same(g, round_trip(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IoFuzzSpecial, GadgetsRoundTrip) {
  expect_same(topo::make_comb(4).g, round_trip(topo::make_comb(4).g));
  expect_same(topo::make_weighted_chain(3).g,
              round_trip(topo::make_weighted_chain(3).g));
  expect_same(topo::make_parallel_chain(2).g,
              round_trip(topo::make_parallel_chain(2).g));  // parallel edges
  expect_same(topo::make_directed_counterexample(6).g,
              round_trip(topo::make_directed_counterexample(6).g));  // digraph
}

TEST(IoFuzzSpecial, IspRoundTripPreservesSemantics) {
  Rng rng(9);
  const Graph g = topo::make_isp_like(rng);
  const Graph h = round_trip(g);
  expect_same(g, h);
  // Double round-trip is byte-identical.
  std::stringstream s1;
  std::stringstream s2;
  save_graph(s1, g);
  save_graph(s2, h);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(IoFuzzSpecial, EmptyAndEdgelessGraphs) {
  GraphBuilder b(3);
  expect_same(b.build(), round_trip(b.build()));
  GraphBuilder empty(0);
  expect_same(empty.build(), round_trip(empty.build()));
}

}  // namespace
}  // namespace rbpc::graph
