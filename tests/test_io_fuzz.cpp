// Property fuzz over every deserializer that reads untrusted bytes: graph
// serialization round-trips across generator families, and the persistence
// plane's snapshot/WAL decoders (src/persist/format.hpp) survive truncated,
// bit-flipped, length-lying and random-garbage images with a clean
// RecoveryError (snapshot) or a reported torn tail (WAL) — never UB. Built
// standalone so CI runs it under ASan/UBSan on both compilers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "graph/io.hpp"
#include "persist/format.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::graph {
namespace {

void expect_same(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.directed(), b.directed());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).weight, b.edge(e).weight);
  }
}

Graph round_trip(const Graph& g) {
  std::stringstream ss;
  save_graph(ss, g);
  return load_graph(ss);
}

class IoFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IoFuzz, RandomGraphsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + rng.below(60);
  const std::size_t max_edges = n * (n - 1) / 2;
  const std::size_t edges = std::min(n - 1 + rng.below(2 * n), max_edges);
  const Graph g = topo::make_random_connected(
      n, edges, rng, static_cast<Weight>(1 + rng.below(1000)));
  expect_same(g, round_trip(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IoFuzzSpecial, GadgetsRoundTrip) {
  expect_same(topo::make_comb(4).g, round_trip(topo::make_comb(4).g));
  expect_same(topo::make_weighted_chain(3).g,
              round_trip(topo::make_weighted_chain(3).g));
  expect_same(topo::make_parallel_chain(2).g,
              round_trip(topo::make_parallel_chain(2).g));  // parallel edges
  expect_same(topo::make_directed_counterexample(6).g,
              round_trip(topo::make_directed_counterexample(6).g));  // digraph
}

TEST(IoFuzzSpecial, IspRoundTripPreservesSemantics) {
  Rng rng(9);
  const Graph g = topo::make_isp_like(rng);
  const Graph h = round_trip(g);
  expect_same(g, h);
  // Double round-trip is byte-identical.
  std::stringstream s1;
  std::stringstream s2;
  save_graph(s1, g);
  save_graph(s2, h);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(IoFuzzSpecial, EmptyAndEdgelessGraphs) {
  GraphBuilder b(3);
  expect_same(b.build(), round_trip(b.build()));
  GraphBuilder empty(0);
  expect_same(empty.build(), round_trip(empty.build()));
}

// ---------------------------------------------------------------------------
// Persistence-plane deserializer fuzz: decode_snapshot and scan_wal consume
// crash debris and must hold "clean error, never UB" on every corruption.
// ---------------------------------------------------------------------------

/// A nontrivial but small valid snapshot image to corrupt.
std::vector<std::uint8_t> valid_snapshot_bytes() {
  persist::SnapshotState s;
  s.seq = 3;
  s.lsdb_version = 17;
  s.num_edges = 6;
  s.links.push_back({1, true, 4});
  s.links.push_back({5, false, 9});
  s.arena_nodes = {0, 2, 3, 1, 4};
  s.arena_edges = {0, 1, kInvalidEdge, 2, kInvalidEdge};
  persist::DemandRecord d;
  d.src = 0;
  d.dst = 3;
  d.stamp = 8;
  d.route = PathRef{0, 3};
  d.baseline = PathRef{3, 2};
  s.demands.push_back(d);
  return persist::encode_snapshot(s);
}

/// A valid WAL image: header + one link event + one FEC install.
std::vector<std::uint8_t> valid_wal_bytes() {
  std::vector<std::uint8_t> bytes = persist::encode_wal_header(3);
  persist::WalRecord link;
  link.type = persist::WalType::kLinkEvent;
  link.link = lsdb::LinkEvent{2, false, 7};
  persist::WalRecord fec;
  fec.type = persist::WalType::kFecInstall;
  fec.fec.demand = 0;
  fec.fec.stamp = 21;
  fec.fec.nodes = {0, 2, 3};
  fec.fec.edges = {0, 1};
  for (const persist::WalRecord& r : {link, fec}) {
    const std::vector<std::uint8_t> enc = persist::encode_wal_record(r);
    bytes.insert(bytes.end(), enc.begin(), enc.end());
  }
  return bytes;
}

TEST(PersistFuzz, EveryTruncatedSnapshotThrowsRecoveryError) {
  const std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  ASSERT_NO_THROW(persist::decode_snapshot(bytes));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(persist::decode_snapshot(
                     std::span<const std::uint8_t>(bytes.data(), len)),
                 persist::RecoveryError)
        << "prefix length " << len;
  }
}

TEST(PersistFuzz, EverySingleBitFlipInASnapshotThrowsRecoveryError) {
  const std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  std::vector<std::uint8_t> mutated = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[i] = bytes[i] ^ static_cast<std::uint8_t>(1u << bit);
      // The CRC covers the whole payload and the framing is exact, so any
      // single-bit flip must be detected — no silent misdecode.
      EXPECT_THROW(persist::decode_snapshot(mutated), persist::RecoveryError)
          << "byte " << i << " bit " << bit;
    }
    mutated[i] = bytes[i];
  }
}

TEST(PersistFuzz, LengthLyingSnapshotsThrowRecoveryError) {
  // The u64 payload-length field sits right after the 8-byte magic.
  const std::size_t len_at = sizeof(persist::kSnapshotMagic);
  for (const std::uint64_t lie :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{1} << 20,
        ~std::uint64_t{0}}) {
    std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
    ASSERT_GT(bytes.size(), len_at + 8);
    for (int b = 0; b < 8; ++b) {
      bytes[len_at + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(lie >> (8 * b));
    }
    EXPECT_THROW(persist::decode_snapshot(bytes), persist::RecoveryError)
        << "lied length " << lie;
  }
}

TEST(PersistFuzz, RandomGarbageSnapshotsThrowRecoveryError) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> junk(rng.below(300));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_THROW(persist::decode_snapshot(junk), persist::RecoveryError);
  }
}

TEST(PersistFuzz, TruncatedWalsReportTornTailsNeverThrowPastHeader) {
  const std::vector<std::uint8_t> bytes = valid_wal_bytes();
  const persist::WalScan whole = persist::scan_wal(bytes);
  ASSERT_EQ(whole.records.size(), 2u);
  ASSERT_FALSE(whole.truncated);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    if (len < persist::kWalHeaderBytes) {
      // No usable header: the file is not a WAL at all.
      EXPECT_THROW(persist::scan_wal(prefix), persist::RecoveryError) << len;
      continue;
    }
    const persist::WalScan scan = persist::scan_wal(prefix);
    EXPECT_EQ(scan.snapshot_seq, 3u) << len;
    EXPECT_LE(scan.records.size(), 2u) << len;
    EXPECT_LE(scan.valid_bytes, len) << len;
    // Every returned record is an intact prefix of the original sequence.
    for (std::size_t r = 0; r < scan.records.size(); ++r) {
      EXPECT_EQ(static_cast<int>(scan.records[r].type),
                static_cast<int>(whole.records[r].type))
          << len;
    }
    EXPECT_EQ(scan.truncated, len != bytes.size() &&
                                  scan.valid_bytes != len)
        << len;
  }
}

TEST(PersistFuzz, EverySingleBitFlipInAWalStopsCleanlyAtTheFlip) {
  const std::vector<std::uint8_t> bytes = valid_wal_bytes();
  std::vector<std::uint8_t> mutated = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[i] = bytes[i] ^ static_cast<std::uint8_t>(1u << bit);
      if (i < persist::kWalHeaderBytes) {
        // Header flips either break the magic (RecoveryError) or change the
        // sequence number (caught later by the snapshot-seq match).
        try {
          const persist::WalScan scan = persist::scan_wal(mutated);
          EXPECT_NE(scan.snapshot_seq, 3u) << "byte " << i << " bit " << bit;
        } catch (const persist::RecoveryError&) {
        }
      } else {
        // Record flips are a torn tail: the scan keeps the intact prefix
        // and never returns a record whose bytes failed the CRC.
        const persist::WalScan scan = persist::scan_wal(mutated);
        EXPECT_TRUE(scan.truncated) << "byte " << i << " bit " << bit;
        EXPECT_LT(scan.valid_bytes, bytes.size())
            << "byte " << i << " bit " << bit;
        EXPECT_LE(scan.valid_bytes, i) << "byte " << i << " bit " << bit;
      }
      mutated[i] = bytes[i];
    }
    mutated[i] = bytes[i];
  }
}

TEST(PersistFuzz, LengthLyingWalRecordsAreTornTails) {
  for (const std::uint32_t lie :
       {std::uint32_t{0}, std::uint32_t{3}, persist::kMaxWalRecordBytes + 1,
        ~std::uint32_t{0}}) {
    std::vector<std::uint8_t> bytes = valid_wal_bytes();
    // Overwrite the first record's u32 length field (right after the
    // header) with the lie; the CRC covers the length, so even a plausible
    // lie fails the checksum instead of walking out of bounds.
    for (int b = 0; b < 4; ++b) {
      bytes[persist::kWalHeaderBytes + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(lie >> (8 * b));
    }
    const persist::WalScan scan = persist::scan_wal(bytes);
    EXPECT_TRUE(scan.truncated) << "lied length " << lie;
    EXPECT_TRUE(scan.records.empty()) << "lied length " << lie;
    EXPECT_EQ(scan.valid_bytes, persist::kWalHeaderBytes)
        << "lied length " << lie;
  }
}

TEST(PersistFuzz, RandomGarbageWalBodiesNeverReturnRecords) {
  Rng rng(78);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes = persist::encode_wal_header(1);
    const std::size_t junk = rng.below(200);
    for (std::size_t i = 0; i < junk; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    const persist::WalScan scan = persist::scan_wal(bytes);
    EXPECT_EQ(scan.snapshot_seq, 1u);
    // A random body passing framing + CRC32 is a ~2^-32 event per round;
    // treat any decoded record as a bug.
    EXPECT_TRUE(scan.records.empty()) << "round " << round;
  }
}

}  // namespace
}  // namespace rbpc::graph
