// Unit tests for src/mpls: label stacks, LSRs, provisioning, forwarding.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "graph/path.hpp"
#include "mpls/network.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"

namespace rbpc::mpls {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;

// --- LabelStack -----------------------------------------------------------------

TEST(LabelStack, PushPopOrder) {
  LabelStack s;
  EXPECT_TRUE(s.empty());
  s.push(10);
  s.push(20);
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.top(), 20u);
  EXPECT_EQ(s.pop(), 20u);
  EXPECT_EQ(s.pop(), 10u);
  EXPECT_THROW(s.pop(), PreconditionError);
  EXPECT_THROW(s.top(), PreconditionError);
}

TEST(LabelStack, PushBottomFirst) {
  LabelStack s;
  s.push_bottom_first({1, 2, 3});  // 3 becomes the top
  EXPECT_EQ(s.top(), 3u);
  EXPECT_EQ(s.to_string(), "[3 2 1]");
}

TEST(LabelStack, RejectsInvalidLabel) {
  LabelStack s;
  EXPECT_THROW(s.push(kInvalidLabel), PreconditionError);
}

// --- Lsr -------------------------------------------------------------------------

TEST(Lsr, LabelAllocationStartsAboveReserved) {
  Lsr r(0);
  const Label first = r.allocate_label();
  EXPECT_GE(first, 16u);
  EXPECT_NE(r.allocate_label(), first);
}

TEST(Lsr, IlmInstallLookupClear) {
  Lsr r(0);
  EXPECT_EQ(r.ilm(99), nullptr);
  r.set_ilm(99, IlmEntry{{5}, 3, 7});
  ASSERT_NE(r.ilm(99), nullptr);
  EXPECT_EQ(r.ilm(99)->push, std::vector<Label>{5});
  EXPECT_EQ(r.ilm_size(), 1u);
  r.clear_ilm(99);
  EXPECT_EQ(r.ilm(99), nullptr);
}

TEST(Lsr, FecInstallLookupClear) {
  Lsr r(0);
  EXPECT_EQ(r.fec(4), nullptr);
  r.set_fec(4, FecEntry{{1, 2}, {0}});
  ASSERT_NE(r.fec(4), nullptr);
  r.clear_fec(4);
  EXPECT_EQ(r.fec(4), nullptr);
}

// --- provisioning + forwarding ------------------------------------------------------

class MplsLineTest : public ::testing::Test {
 protected:
  // 0 - 1 - 2 - 3 line.
  MplsLineTest() : g_(topo::make_chain(4)), net_(g_) {}
  Graph g_;
  Network net_;
};

TEST_F(MplsLineTest, SingleLspDeliversAlongPath) {
  const Path p = Path::from_nodes(g_, {0, 1, 2, 3});
  const LspId id = net_.provision_lsp(p);
  net_.set_fec_chain(0, 3, {id});
  const ForwardResult r = net_.send(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.trace, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(r.hops, 3u);
}

TEST_F(MplsLineTest, EveryRouterOnLspHoldsOneEntry) {
  const Path p = Path::from_nodes(g_, {0, 1, 2, 3});
  net_.provision_lsp(p);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(net_.lsr(v).ilm_size(), 1u) << "router " << v;
  }
  EXPECT_EQ(net_.total_ilm_entries(), 4u);
}

TEST_F(MplsLineTest, PhpSkipsEgressEntry) {
  const Path p = Path::from_nodes(g_, {0, 1, 2, 3});
  const LspId id = net_.provision_lsp(p, /*php=*/true);
  EXPECT_EQ(net_.lsr(3).ilm_size(), 0u);
  EXPECT_EQ(net_.lsp(id).labels.back(), kInvalidLabel);
  net_.set_fec_chain(0, 3, {id});
  const ForwardResult r = net_.send(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.trace, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST_F(MplsLineTest, NoFecEntryReported) {
  const ForwardResult r = net_.send(0, 3);
  EXPECT_EQ(r.status, ForwardStatus::NoFecEntry);
  EXPECT_EQ(r.stopped_at, 0u);
}

TEST_F(MplsLineTest, UnknownLabelDropped) {
  LabelStack s;
  s.push(12345);
  const ForwardResult r = net_.send_with_stack(0, 3, s);
  EXPECT_EQ(r.status, ForwardStatus::UnknownLabel);
}

TEST_F(MplsLineTest, LinkDownDropsPacket) {
  const Path p = Path::from_nodes(g_, {0, 1, 2, 3});
  const LspId id = net_.provision_lsp(p);
  net_.set_fec_chain(0, 3, {id});
  net_.set_failures(FailureMask::of_edges({1}));  // link 1-2
  const ForwardResult r = net_.send(0, 3);
  EXPECT_EQ(r.status, ForwardStatus::LinkDown);
  EXPECT_EQ(r.stopped_at, 1u);
}

TEST_F(MplsLineTest, TearDownRemovesEntries) {
  const Path p = Path::from_nodes(g_, {0, 1, 2, 3});
  const LspId id = net_.provision_lsp(p);
  net_.tear_down_lsp(id);
  EXPECT_EQ(net_.total_ilm_entries(), 0u);
  EXPECT_TRUE(net_.lsp(id).torn_down);
  net_.tear_down_lsp(id);  // idempotent
}

TEST_F(MplsLineTest, ProvisionValidation) {
  EXPECT_THROW(net_.provision_lsp(Path{}), PreconditionError);
  EXPECT_THROW(net_.provision_lsp(Path::trivial(0)), PreconditionError);
  const Path one_hop = Path::from_nodes(g_, {0, 1});
  EXPECT_THROW(net_.provision_lsp(one_hop, /*php=*/true), PreconditionError);
}

// --- concatenation ---------------------------------------------------------------------

class MplsConcatTest : public ::testing::Test {
 protected:
  // Ring of 6: base LSPs 0->2 (via 1) and 2->4 (via 3).
  MplsConcatTest() : g_(topo::make_ring(6)), net_(g_) {
    p1_ = net_.provision_lsp(Path::from_nodes(g_, {0, 1, 2}));
    p2_ = net_.provision_lsp(Path::from_nodes(g_, {2, 3, 4}));
  }
  Graph g_;
  Network net_;
  LspId p1_ = kInvalidLsp;
  LspId p2_ = kInvalidLsp;
};

TEST_F(MplsConcatTest, TwoLspChainDelivers) {
  // The paper's Figure-6 mechanism: push [ingress(P2), ingress(P1)], the
  // junction pops P1's label and continues on P2.
  net_.set_fec_chain(0, 4, {p1_, p2_});
  const ForwardResult r = net_.send(0, 4);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.trace, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST_F(MplsConcatTest, ChainValidationCatchesGaps) {
  EXPECT_THROW(net_.set_fec_chain(0, 4, {p2_, p1_}), PreconditionError);
  EXPECT_THROW(net_.set_fec_chain(0, 3, {p1_, p2_}), PreconditionError);
  EXPECT_THROW(net_.set_fec_chain(1, 4, {p1_, p2_}), PreconditionError);
  EXPECT_THROW(net_.set_fec_chain(0, 4, {}), PreconditionError);
}

TEST_F(MplsConcatTest, ThreeLspChainDelivers) {
  const LspId p3 = net_.provision_lsp(Path::from_nodes(g_, {4, 5, 0}));
  net_.set_fec_chain(0, 0, {p1_, p2_, p3});
  const ForwardResult r = net_.send(0, 0);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops, 6u);
}

TEST_F(MplsConcatTest, LspsUsingEdge) {
  EXPECT_EQ(net_.lsps_using_edge(0), std::vector<LspId>{p1_});  // edge 0-1
  EXPECT_EQ(net_.lsps_using_edge(2), std::vector<LspId>{p2_});  // edge 2-3
  EXPECT_TRUE(net_.lsps_using_edge(4).empty());
}

TEST_F(MplsConcatTest, SpliceRedirectsMidPath) {
  // End-route splice of P1 at router 1: redirect the rest of P1 onto a
  // detour LSP that ends at P1's egress (router 2). The label *beneath*
  // P1's — the chained P2 ingress label pushed by the FEC entry — is then
  // consumed at router 2 exactly as if P1 had completed normally. In the
  // 6-ring the only 1->2 alternative is 1-0-5-4-3-2.
  const LspId detour =
      net_.provision_lsp(Path::from_nodes(g_, {1, 0, 5, 4, 3, 2}));
  net_.set_fec_chain(0, 4, {p1_, p2_});
  const IlmEntry saved =
      net_.splice_ilm(p1_, 1, {net_.lsp(detour).ingress_label()});
  const ForwardResult r = net_.send(0, 4);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.trace, (std::vector<NodeId>{0, 1, 0, 5, 4, 3, 2, 3, 4}));

  // Restoring the saved entry brings back the original behavior.
  net_.restore_ilm(p1_, 1, saved);
  const ForwardResult r2 = net_.send(0, 4);
  EXPECT_EQ(r2.trace, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST_F(MplsConcatTest, SpliceValidation) {
  EXPECT_THROW(net_.splice_ilm(p1_, 5, {}), PreconditionError);  // not on LSP
}

TEST_F(MplsConcatTest, TtlGuardStopsForwardingLoops) {
  // Hand-build a looping pair of ILM entries.
  Lsr& r0 = net_.lsr_mutable(0);
  Lsr& r1 = net_.lsr_mutable(1);
  const Label l0 = r0.allocate_label();
  const Label l1 = r1.allocate_label();
  r0.set_ilm(l0, IlmEntry{{l1}, 0, kInvalidLsp});  // 0 -> 1 (edge 0)
  r1.set_ilm(l1, IlmEntry{{l0}, 0, kInvalidLsp});  // 1 -> 0
  LabelStack s;
  s.push(l0);
  const ForwardResult r = net_.send_with_stack(0, 3, s, /*ttl=*/32);
  EXPECT_EQ(r.status, ForwardStatus::TtlExpired);
}

TEST_F(MplsConcatTest, StackUnderflowDetected) {
  // Deliver P1's stack but claim the packet is destined beyond the egress.
  LabelStack s;
  s.push(net_.lsp(p1_).ingress_label());
  const ForwardResult r = net_.send_with_stack(0, 4, s);
  EXPECT_EQ(r.status, ForwardStatus::StackUnderflow);
  EXPECT_EQ(r.stopped_at, 2u);
}

TEST(MplsStatus, ToStringCoversAll) {
  EXPECT_EQ(to_string(ForwardStatus::Delivered), "delivered");
  EXPECT_EQ(to_string(ForwardStatus::NoFecEntry), "no FEC entry");
  EXPECT_EQ(to_string(ForwardStatus::UnknownLabel), "unknown label");
  EXPECT_EQ(to_string(ForwardStatus::LinkDown), "link down");
  EXPECT_EQ(to_string(ForwardStatus::TtlExpired), "TTL expired");
  EXPECT_EQ(to_string(ForwardStatus::StackUnderflow), "stack underflow");
}

}  // namespace
}  // namespace rbpc::mpls
