// Unit tests for src/spf: BFS/Dijkstra trees, padding, counting, oracle,
// bypass.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "spf/bypass.hpp"
#include "spf/counting.hpp"
#include "spf/metric.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::spf {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Path;
using graph::Weight;

// A weighted diamond: 0-1 (1), 0-2 (4), 1-3 (2), 2-3 (1), 1-2 (1).
Graph diamond() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 4);
  b.add_edge(1, 3, 2);
  b.add_edge(2, 3, 1);
  b.add_edge(1, 2, 1);
  return b.build();
}

TEST(Spf, WeightedDistances) {
  const Graph g = diamond();
  const auto tree = shortest_tree(g, 0);
  EXPECT_EQ(tree.dist(0), 0);
  EXPECT_EQ(tree.dist(1), 1);
  EXPECT_EQ(tree.dist(2), 2);  // via 1
  EXPECT_EQ(tree.dist(3), 3);  // 0-1-3 or 0-1-2-3
}

TEST(Spf, HopDistancesUseBfs) {
  const Graph g = diamond();
  const auto tree = shortest_tree(g, 0, FailureMask::none(),
                                  SpfOptions{.metric = Metric::Hops});
  EXPECT_EQ(tree.dist(3), 2);
  EXPECT_EQ(tree.hops(3), 2u);
  EXPECT_EQ(tree.metric(), Metric::Hops);
}

TEST(Spf, PathReconstruction) {
  const Graph g = diamond();
  const auto tree = shortest_tree(g, 0);
  const Path p = tree.path_to(g, 3);
  EXPECT_EQ(p.source(), 0u);
  EXPECT_EQ(p.target(), 3u);
  EXPECT_EQ(p.cost(g), 3);
  EXPECT_TRUE(p.simple());
}

TEST(Spf, UnreachableAfterFailure) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  const auto tree =
      shortest_tree(g, 0, FailureMask::of_edges({1}), SpfOptions{});
  EXPECT_TRUE(tree.reachable(1));
  EXPECT_FALSE(tree.reachable(2));
  EXPECT_EQ(tree.dist(2), graph::kUnreachable);
  EXPECT_THROW(tree.path_to(g, 2), PreconditionError);
}

TEST(Spf, FailedSourceRejected) {
  const Graph g = diamond();
  EXPECT_THROW(
      shortest_tree(g, 0, FailureMask::of_nodes({0}), SpfOptions{}),
      PreconditionError);
}

TEST(Spf, NodeFailureReroutesAroundIt) {
  const Graph g = diamond();
  const Path p = shortest_path(g, 0, 3, FailureMask::of_nodes({1}));
  EXPECT_EQ(p.nodes(), (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(p.cost(g), 5);
}

TEST(Spf, SinglePairAndDistanceHelpers) {
  const Graph g = diamond();
  EXPECT_EQ(distance(g, 0, 3), 3);
  // Strict-improvement relaxation settles 3 via the direct (1,3) edge.
  EXPECT_EQ(shortest_path(g, 0, 3).hops(), 2u);
  EXPECT_TRUE(shortest_path(g, 0, 0).hops() == 0u);
}

TEST(Spf, DisconnectedPairGivesEmptyPath) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_TRUE(shortest_path(g, 0, 3).empty());
  EXPECT_EQ(distance(g, 0, 3), graph::kUnreachable);
}

TEST(Spf, ParallelEdgesUseCheapest) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5);
  const EdgeId cheap = b.add_edge(0, 1, 2);
  const Graph g = b.build();
  const Path p = shortest_path(g, 0, 1);
  EXPECT_EQ(p.edge(0), cheap);
  EXPECT_EQ(p.cost(g), 2);
}

TEST(Spf, DirectedGraphRespectsOrientation) {
  GraphBuilder b(3, /*directed=*/true);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 0, 1);
  const Graph g = b.build();
  EXPECT_EQ(distance(g, 0, 2), 2);
  EXPECT_EQ(distance(g, 2, 1), 2);  // must go 2->0->1
}

// --- padding / canonical paths ---------------------------------------------------

TEST(Padding, SaltsAreStableAndInRange) {
  for (EdgeId e = 0; e < 1000; ++e) {
    const Weight s = padding_salt(e);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, kMaxSalt);
    EXPECT_EQ(s, padding_salt(e));  // deterministic
  }
}

TEST(Padding, PaddedTreePreservesTrueDistances) {
  Rng rng(5);
  const Graph g = topo::make_random_connected(40, 90, rng, 10);
  const auto plain = shortest_tree(g, 0);
  const auto padded = shortest_tree(g, 0, FailureMask::none(),
                                    SpfOptions{.padded = true});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(plain.dist(v), padded.dist(v)) << "node " << v;
  }
}

TEST(Padding, CanonicalPathsAreSubpathConsistent) {
  // Subpaths of padded-unique shortest paths are themselves the canonical
  // paths of their endpoints (Theorem 3's base-set property).
  Rng rng(7);
  const Graph g = topo::make_random_connected(30, 60, rng, 5);
  DistanceOracle oracle(g, FailureMask{}, Metric::Weighted);
  for (NodeId s = 0; s < 10; ++s) {
    const Path p = oracle.canonical_path(s, 29);
    if (p.empty()) continue;
    for (std::size_t i = 0; i < p.num_nodes(); ++i) {
      for (std::size_t j = i + 1; j < p.num_nodes(); ++j) {
        const Path sub = p.subpath(i, j);
        EXPECT_EQ(sub, oracle.canonical_path(sub.source(), sub.target()))
            << "subpath " << sub.to_string();
      }
    }
  }
}

TEST(Padding, CanonicalPathDeterministicAcrossRuns) {
  Rng rng(9);
  const Graph g = topo::make_random_connected(25, 50, rng, 3);
  DistanceOracle o1(g, FailureMask{}, Metric::Weighted);
  DistanceOracle o2(g, FailureMask{}, Metric::Weighted);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(o1.canonical_path(0, v), o2.canonical_path(0, v));
  }
}

// --- counting ----------------------------------------------------------------------

TEST(Counting, GridHasBinomialPathCounts) {
  // On an n x n unit grid the number of shortest corner-to-corner paths is
  // C(2(n-1), n-1).
  const Graph g = topo::make_grid(3, 3);
  const auto counts = count_shortest_paths(g, 0, FailureMask::none(),
                                           Metric::Hops);
  EXPECT_EQ(counts[8], 6u);  // C(4,2)
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[2], 1u);  // straight line along the row
}

TEST(Counting, ParallelEdgesCountSeparately) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  EXPECT_EQ(count_shortest_paths_pair(g, 0, 1), 2u);
}

TEST(Counting, RespectsFailures) {
  const Graph g = topo::make_grid(2, 2);
  EXPECT_EQ(count_shortest_paths_pair(g, 0, 3, FailureMask::none(),
                                      Metric::Hops),
            2u);
  EXPECT_EQ(count_shortest_paths_pair(g, 0, 3, FailureMask::of_edges({0}),
                                      Metric::Hops),
            1u);
}

TEST(Counting, UnreachableIsZero) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(count_shortest_paths_pair(g, 0, 2), 0u);
}

TEST(Counting, WeightedTiesCounted) {
  const Graph g = diamond();
  // 0->3: 0-1-3 (1+2=3) and 0-1-2-3 (1+1+1=3).
  EXPECT_EQ(count_shortest_paths_pair(g, 0, 3), 2u);
}

// --- oracle -------------------------------------------------------------------------

TEST(Oracle, DistMatchesDirectDijkstra) {
  Rng rng(11);
  const Graph g = topo::make_random_connected(30, 70, rng, 8);
  DistanceOracle oracle(g, FailureMask{}, Metric::Weighted);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(oracle.dist(u, v), distance(g, u, v));
    }
  }
}

TEST(Oracle, IsShortestAcceptsAnyShortestPath) {
  const Graph g = diamond();
  DistanceOracle oracle(g, FailureMask{}, Metric::Weighted);
  const Path a = Path::from_nodes(g, {0, 1, 3});
  const Path b = Path::from_nodes(g, {0, 1, 2, 3});
  EXPECT_TRUE(oracle.is_shortest(a));
  EXPECT_TRUE(oracle.is_shortest(b));
  const Path c = Path::from_nodes(g, {0, 2, 3});
  EXPECT_FALSE(oracle.is_shortest(c));  // cost 5 > 3
}

TEST(Oracle, IsCanonicalAcceptsExactlyOne) {
  const Graph g = diamond();
  DistanceOracle oracle(g, FailureMask{}, Metric::Weighted);
  const Path a = Path::from_nodes(g, {0, 1, 3});
  const Path b = Path::from_nodes(g, {0, 1, 2, 3});
  EXPECT_NE(oracle.is_canonical(a), oracle.is_canonical(b));
}

TEST(Oracle, TrivialSegmentsAreMembers) {
  const Graph g = diamond();
  DistanceOracle oracle(g, FailureMask{}, Metric::Weighted);
  EXPECT_TRUE(oracle.is_shortest(Path{}));
  EXPECT_TRUE(oracle.is_shortest(Path::trivial(2)));
  EXPECT_TRUE(oracle.is_canonical(Path::trivial(2)));
}

TEST(Oracle, HonorsItsFailureMask) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 2, 5);
  const Graph g = b.build();
  DistanceOracle oracle(g, FailureMask::of_edges({0}), Metric::Weighted);
  EXPECT_EQ(oracle.dist(0, 2), 5);
  EXPECT_EQ(oracle.some_shortest_path(0, 2).hops(), 1u);
}

TEST(Oracle, CacheEvictionKeepsAnswersCorrect) {
  Rng rng(13);
  const Graph g = topo::make_random_connected(20, 40, rng, 4);
  DistanceOracle bounded(g, FailureMask{}, Metric::Weighted,
                         /*max_cached_trees=*/2);
  DistanceOracle unbounded(g, FailureMask{}, Metric::Weighted);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(bounded.dist(u, v), unbounded.dist(u, v));
    }
  }
  EXPECT_GT(bounded.spf_runs(), 0u);
}

TEST(Oracle, SymmetricLookupAvoidsExtraSpf) {
  const Graph g = diamond();
  DistanceOracle oracle(g, FailureMask{}, Metric::Weighted);
  (void)oracle.dist(0, 3);
  const std::size_t runs = oracle.spf_runs();
  // Undirected: dist(3, 0) can be served from the cached tree at 0.
  (void)oracle.dist(3, 0);
  EXPECT_EQ(oracle.spf_runs(), runs);
}

// --- bypass -------------------------------------------------------------------------

TEST(Bypass, TriangleEdgeHasTwoHopBypass) {
  GraphBuilder b(3);
  const EdgeId e01 = b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 0, 1);
  const Graph g = b.build();
  const Path byp = min_cost_bypass(g, e01);
  EXPECT_EQ(byp.hops(), 2u);
  EXPECT_EQ(byp.source(), 0u);
  EXPECT_EQ(byp.target(), 1u);
  EXPECT_FALSE(byp.uses_edge(e01));
}

TEST(Bypass, BridgeHasNoBypass) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const EdgeId bridge = b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_TRUE(min_cost_bypass(g, bridge).empty());
}

TEST(Bypass, ParallelTwinGivesOneHopBypass) {
  GraphBuilder b(2);
  const EdgeId a = b.add_edge(0, 1, 1);
  const EdgeId twin = b.add_edge(0, 1, 3);
  const Graph g = b.build();
  const Path byp = min_cost_bypass(g, a);
  EXPECT_EQ(byp.hops(), 1u);
  EXPECT_EQ(byp.edge(0), twin);
}

TEST(Bypass, RespectsExistingMask) {
  // Square 0-1-2-3-0: bypassing (0,1) normally takes 0-3-2-1; with (2,3)
  // also failed there is no bypass.
  const Graph g = topo::make_ring(4);
  const Path byp = min_cost_bypass(g, 0);
  EXPECT_EQ(byp.hops(), 3u);
  EXPECT_TRUE(min_cost_bypass(g, 0, FailureMask::of_edges({2})).empty());
}

}  // namespace
}  // namespace rbpc::spf
