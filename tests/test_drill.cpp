// Integration fuzz: randomized fail/recover/patch churn against both
// controller flavors, with the data-plane invariant checked after every
// event (core/drill.hpp).
#include <gtest/gtest.h>

#include "core/base_set.hpp"
#include "core/controller.hpp"
#include "core/drill.hpp"
#include "core/merged_controller.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::Graph;

DrillActions actions_for(RbpcController& ctl, bool with_patch,
                         bool with_routers = false) {
  DrillActions a;
  a.fail_link = [&ctl](EdgeId e) { ctl.fail_link(e); };
  a.recover_link = [&ctl](EdgeId e) { ctl.recover_link(e); };
  if (with_routers) {
    a.fail_router = [&ctl](graph::NodeId v) { ctl.fail_router(v); };
    a.recover_router = [&ctl](graph::NodeId v) { ctl.recover_router(v); };
  }
  if (with_patch) {
    a.local_patch = [&ctl](EdgeId e) {
      ctl.local_patch(e, RbpcController::LocalMode::EndRoute);
    };
  }
  a.send = [&ctl](graph::NodeId s, graph::NodeId t) { return ctl.send(s, t); };
  a.failures = [&ctl]() -> const graph::FailureMask& { return ctl.failures(); };
  return a;
}

DrillActions actions_for(MergedRbpcController& ctl, bool with_patch,
                         bool with_routers = false) {
  DrillActions a;
  a.fail_link = [&ctl](EdgeId e) { ctl.fail_link(e); };
  a.recover_link = [&ctl](EdgeId e) { ctl.recover_link(e); };
  if (with_routers) {
    a.fail_router = [&ctl](graph::NodeId v) { ctl.fail_router(v); };
    a.recover_router = [&ctl](graph::NodeId v) { ctl.recover_router(v); };
  }
  if (with_patch) {
    a.local_patch = [&ctl](EdgeId e) { ctl.local_patch(e); };
  }
  a.send = [&ctl](graph::NodeId s, graph::NodeId t) { return ctl.send(s, t); };
  a.failures = [&ctl]() -> const graph::FailureMask& { return ctl.failures(); };
  return a;
}

void expect_clean(const DrillReport& report) {
  EXPECT_TRUE(report.ok()) << report.violations.size() << " violations; first: "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_GT(report.events, 0u);
  EXPECT_GT(report.delivered, 0u);
}

TEST(Drill, PerLspControllerSurvivesChurnOnRing) {
  const Graph g = topo::make_ring(10);
  RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();
  Rng rng(201);
  DrillConfig cfg;
  cfg.steps = 60;
  expect_clean(run_failure_drill(g, spf::Metric::Hops,
                                 actions_for(ctl, false), cfg, rng));
}

TEST(Drill, PerLspControllerSurvivesChurnOnMesh) {
  Rng topo_rng(203);
  const Graph g = topo::make_random_connected(24, 60, topo_rng, 8);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  Rng rng(205);
  DrillConfig cfg;
  cfg.steps = 40;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, false), cfg, rng));
}

TEST(Drill, PerLspControllerWithLocalPatches) {
  Rng topo_rng(207);
  const Graph g = topo::make_random_connected(20, 50, topo_rng, 5);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  Rng rng(209);
  DrillConfig cfg;
  cfg.steps = 40;
  cfg.patch_chance = 1.0;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, true), cfg, rng));
}

TEST(Drill, MergedControllerSurvivesChurn) {
  Rng topo_rng(211);
  const Graph g = topo::make_random_connected(22, 55, topo_rng, 7);
  MergedRbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  Rng rng(213);
  DrillConfig cfg;
  cfg.steps = 40;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, false), cfg, rng));
}

TEST(Drill, MergedControllerWithLocalPatches) {
  Rng topo_rng(215);
  const Graph g = topo::make_random_connected(18, 44, topo_rng, 6);
  MergedRbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  Rng rng(217);
  DrillConfig cfg;
  cfg.steps = 30;
  cfg.patch_chance = 1.0;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, true), cfg, rng));
}

TEST(Drill, BatchEngineMatchesSerialUnderChurn) {
  // Soak the parallel batch engine against the serial restoration loop
  // amid random fail/recover churn (including router failures): any
  // divergence is reported as a drill violation.
  Rng topo_rng(231);
  const Graph g = topo::make_random_connected(22, 55, topo_rng, 7);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  spf::DistanceOracle oracle(g, graph::FailureMask{}, spf::Metric::Weighted);
  CanonicalBaseSet base(oracle);
  Rng rng(233);
  DrillConfig cfg;
  cfg.steps = 25;
  cfg.router_chance = 0.3;
  cfg.batch_base = &base;
  cfg.batch_threads = 3;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, false, true), cfg, rng));
}

TEST(Drill, PerLspControllerWithRouterFailures) {
  Rng topo_rng(221);
  const Graph g = topo::make_random_connected(20, 55, topo_rng, 6);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  Rng rng(223);
  DrillConfig cfg;
  cfg.steps = 35;
  cfg.router_chance = 0.4;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, false, true), cfg, rng));
}

TEST(Drill, MergedControllerWithRouterFailures) {
  Rng topo_rng(227);
  const Graph g = topo::make_random_connected(18, 48, topo_rng, 5);
  MergedRbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  Rng rng(229);
  DrillConfig cfg;
  cfg.steps = 30;
  cfg.router_chance = 0.4;
  expect_clean(run_failure_drill(g, spf::Metric::Weighted,
                                 actions_for(ctl, false, true), cfg, rng));
}

TEST(Drill, PlannedControllerSurvivesChurn) {
  const Graph g = topo::make_ring(9);
  RbpcController ctl(g, spf::Metric::Hops);
  ctl.provision();
  for (EdgeId e = 0; e < g.num_edges(); ++e) ctl.precompute_plan(e);
  Rng rng(219);
  DrillConfig cfg;
  cfg.steps = 50;
  expect_clean(run_failure_drill(g, spf::Metric::Hops,
                                 actions_for(ctl, false), cfg, rng));
}

TEST(Drill, RequiresHooks) {
  const Graph g = topo::make_ring(4);
  Rng rng(1);
  EXPECT_THROW(
      run_failure_drill(g, spf::Metric::Hops, DrillActions{}, DrillConfig{},
                        rng),
      PreconditionError);
}

}  // namespace
}  // namespace rbpc::core
