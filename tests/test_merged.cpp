// Tests for merged destination trees (mpls::Network) and the merged-mode
// controller: functional equivalence with the per-LSP controller, plus the
// label-economics advantage.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/merged_controller.hpp"
#include "graph/analysis.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

// --- mpls-level merged trees -----------------------------------------------------

TEST(MergedTree, ForwardsAllSourcesToDest) {
  const Graph g = topo::make_grid(3, 3);
  mpls::Network net(g);
  const auto tree = spf::shortest_tree(g, 4, FailureMask::none(),
                                       spf::SpfOptions{.padded = true});
  std::vector<NodeId> parent(g.num_nodes(), graph::kInvalidNode);
  std::vector<EdgeId> parent_edge(g.num_nodes(), graph::kInvalidEdge);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 4 || !tree.reachable(v)) continue;
    parent[v] = tree.parent(v);
    parent_edge[v] = tree.parent_edge(v);
  }
  net.provision_merged_tree(4, parent, parent_edge);
  EXPECT_TRUE(net.has_merged_tree(4));
  EXPECT_FALSE(net.has_merged_tree(0));

  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (s == 4) continue;
    mpls::LabelStack stack;
    stack.push(net.merged_label(s, 4));
    const auto r = net.send_with_stack(s, 4, stack);
    ASSERT_TRUE(r.delivered()) << "from " << s;
    EXPECT_EQ(static_cast<graph::Weight>(r.hops), tree.dist(s));
  }
}

TEST(MergedTree, OneLabelPerRouter) {
  const Graph g = topo::make_ring(6);
  mpls::Network net(g);
  const auto tree = spf::shortest_tree(g, 0, FailureMask::none(),
                                       spf::SpfOptions{.padded = true});
  std::vector<NodeId> parent(g.num_nodes(), graph::kInvalidNode);
  std::vector<EdgeId> parent_edge(g.num_nodes(), graph::kInvalidEdge);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    parent[v] = tree.parent(v);
    parent_edge[v] = tree.parent_edge(v);
  }
  net.provision_merged_tree(0, parent, parent_edge);
  // Exactly one entry per router for the whole destination.
  EXPECT_EQ(net.total_ilm_entries(), g.num_nodes());
}

TEST(MergedTree, RejectsDoubleProvision) {
  const Graph g = topo::make_ring(4);
  mpls::Network net(g);
  std::vector<NodeId> parent(4, graph::kInvalidNode);
  std::vector<EdgeId> parent_edge(4, graph::kInvalidEdge);
  parent[1] = 0;
  parent_edge[1] = 0;
  net.provision_merged_tree(0, parent, parent_edge);
  EXPECT_THROW(net.provision_merged_tree(0, parent, parent_edge),
               PreconditionError);
  EXPECT_EQ(net.merged_label(3, 0), mpls::kInvalidLabel);  // not covered
  EXPECT_EQ(net.merged_label(3, 2), mpls::kInvalidLabel);  // no tree
}

// --- merged controller --------------------------------------------------------

class MergedControllerTest : public ::testing::Test {
 protected:
  MergedControllerTest() : g_(topo::make_ring(8)), ctl_(g_, spf::Metric::Hops) {
    ctl_.provision();
  }
  Graph g_;
  MergedRbpcController ctl_;
};

TEST_F(MergedControllerTest, DeliversAllPairsOptimally) {
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const auto r = ctl_.send(s, t);
      ASSERT_TRUE(r.delivered()) << s << "->" << t;
      EXPECT_EQ(static_cast<graph::Weight>(r.hops),
                spf::distance(g_, s, t, FailureMask::none(),
                              spf::SpfOptions{.metric = spf::Metric::Hops}));
    }
  }
}

TEST_F(MergedControllerTest, RestoresAfterFailureAndRecovers) {
  ctl_.fail_link(0);
  EXPECT_GT(ctl_.pairs_under_restoration(), 0u);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const auto r = ctl_.send(s, t);
      ASSERT_TRUE(r.delivered()) << s << "->" << t;
      EXPECT_EQ(static_cast<graph::Weight>(r.hops),
                spf::distance(g_, s, t, ctl_.failures(),
                              spf::SpfOptions{.metric = spf::Metric::Hops}));
    }
  }
  ctl_.recover_link(0);
  EXPECT_EQ(ctl_.pairs_under_restoration(), 0u);
  EXPECT_TRUE(ctl_.send(0, 1).delivered());
}

TEST_F(MergedControllerTest, LocalPatchRepairsAllTrafficThroughLink) {
  ctl_.fail_link(3);
  const std::size_t patched = ctl_.local_patch(3);
  EXPECT_GT(patched, 0u);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      EXPECT_TRUE(ctl_.send(s, t).delivered()) << s << "->" << t;
    }
  }
  ctl_.recover_link(3);
  EXPECT_TRUE(ctl_.send(3, 4).delivered());
}

TEST_F(MergedControllerTest, RouterFailureAndRecovery) {
  ctl_.fail_router(5);
  for (NodeId s = 0; s < 8; ++s) {
    if (s == 5) continue;
    for (NodeId t = 0; t < 8; ++t) {
      if (t == 5 || s == t) continue;
      const auto r = ctl_.send(s, t);
      const auto want =
          spf::distance(g_, s, t, ctl_.failures(),
                        spf::SpfOptions{.metric = spf::Metric::Hops});
      if (want == graph::kUnreachable) {
        EXPECT_FALSE(r.delivered());
      } else {
        ASSERT_TRUE(r.delivered()) << s << "->" << t;
        EXPECT_EQ(static_cast<graph::Weight>(r.hops), want);
      }
    }
  }
  ctl_.recover_router(5);
  EXPECT_EQ(ctl_.pairs_under_restoration(), 0u);
  EXPECT_TRUE(ctl_.send(4, 6).delivered());
  EXPECT_THROW(ctl_.recover_router(5), PreconditionError);
}

TEST_F(MergedControllerTest, Guards) {
  EXPECT_THROW(ctl_.local_patch(0), PreconditionError);  // not failed
  EXPECT_THROW(ctl_.recover_link(0), PreconditionError);
  ctl_.fail_link(0);
  EXPECT_THROW(ctl_.fail_link(0), PreconditionError);
}

TEST(MergedController, EquivalentDeliveryToPerLspController) {
  Rng rng(111);
  const Graph g = topo::make_random_connected(20, 50, rng, 7);
  RbpcController per_lsp(g, spf::Metric::Weighted);
  per_lsp.provision();
  MergedRbpcController merged(g, spf::Metric::Weighted);
  merged.provision();

  for (int round = 0; round < 4; ++round) {
    const EdgeId e = static_cast<EdgeId>(rng.below(g.num_edges()));
    if (per_lsp.failures().edge_failed(e)) continue;
    per_lsp.fail_link(e);
    merged.fail_link(e);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        if (s == t) continue;
        const auto a = per_lsp.send(s, t);
        const auto b = merged.send(s, t);
        ASSERT_EQ(a.delivered(), b.delivered()) << s << "->" << t;
        if (a.delivered()) {
          // Both restore along the same canonical min-cost route.
          EXPECT_EQ(a.trace, b.trace) << s << "->" << t;
        }
      }
    }
    per_lsp.recover_link(e);
    merged.recover_link(e);
  }
}

TEST(MergedController, LabelEconomics) {
  Rng rng(113);
  const Graph g = topo::make_isp_like(rng);
  RbpcController per_lsp(g, spf::Metric::Weighted);
  per_lsp.provision();
  MergedRbpcController merged(g, spf::Metric::Weighted);
  merged.provision();
  // Merged mode: ~n entries per router vs ~n * avg-path-length total.
  EXPECT_LT(merged.network().total_ilm_entries(),
            per_lsp.network().total_ilm_entries() / 3);
  // Per router: at most n merged labels + 2 edge-LSP entries per incident
  // link (ingress of the outgoing one-hop LSP, egress of the incoming one).
  const auto max_deg = graph::degree_stats(g).max;
  EXPECT_LE(merged.network().max_ilm_entries(), g.num_nodes() + 2 * max_deg);
}

}  // namespace
}  // namespace rbpc::core
