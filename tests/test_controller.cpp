// Integration tests: RbpcController drives the MPLS simulator, and
// correctness is checked by forwarding real packets through the label
// tables before, during, and after failures.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/controller.hpp"
#include "graph/analysis.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using mpls::ForwardResult;
using mpls::ForwardStatus;

class ControllerRingTest : public ::testing::Test {
 protected:
  ControllerRingTest()
      : g_(topo::make_ring(8)), ctl_(g_, spf::Metric::Hops) {
    ctl_.provision();
  }
  Graph g_;
  RbpcController ctl_;
};

TEST_F(ControllerRingTest, ProvisionInstallsAllPairsPlusEdgeLsps) {
  // 8*7 ordered pairs + 2 per edge.
  EXPECT_EQ(ctl_.num_base_lsps(), 8u * 7u + 2u * 8u);
  EXPECT_NE(ctl_.pair_lsp(0, 5), mpls::kInvalidLsp);
  EXPECT_EQ(ctl_.pair_lsp(3, 3), mpls::kInvalidLsp);
}

TEST_F(ControllerRingTest, AllPairsDeliverBeforeFailure) {
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const ForwardResult r = ctl_.send(s, t);
      EXPECT_TRUE(r.delivered()) << s << "->" << t << ": "
                                 << to_string(r.status);
      // Shortest-path delivery: hop count matches the metric.
      EXPECT_EQ(static_cast<graph::Weight>(r.hops),
                spf::distance(g_, s, t, FailureMask::none(),
                              spf::SpfOptions{.metric = spf::Metric::Hops}));
    }
  }
}

TEST_F(ControllerRingTest, SourceRbpcRestoresAllPairsAfterLinkFailure) {
  ctl_.fail_link(0);  // (0,1)
  EXPECT_GT(ctl_.pairs_under_restoration(), 0u);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const ForwardResult r = ctl_.send(s, t);
      ASSERT_TRUE(r.delivered()) << s << "->" << t << ": "
                                 << to_string(r.status);
      // Restoration is along the new shortest path.
      EXPECT_EQ(static_cast<graph::Weight>(r.hops),
                spf::distance(g_, s, t, ctl_.failures(),
                              spf::SpfOptions{.metric = spf::Metric::Hops}))
          << s << "->" << t;
    }
  }
}

TEST_F(ControllerRingTest, RecoveryRestoresOriginalRoutes) {
  const ForwardResult before = ctl_.send(0, 1);
  ctl_.fail_link(0);
  ctl_.recover_link(0);
  EXPECT_EQ(ctl_.pairs_under_restoration(), 0u);
  const ForwardResult after = ctl_.send(0, 1);
  EXPECT_TRUE(after.delivered());
  EXPECT_EQ(after.trace, before.trace);
}

TEST_F(ControllerRingTest, MultipleFailuresAccumulate) {
  ctl_.fail_link(0);  // (0,1)
  ctl_.fail_link(4);  // (4,5)
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      const ForwardResult r = ctl_.send(s, t);
      const auto direct =
          spf::distance(g_, s, t, ctl_.failures(),
                        spf::SpfOptions{.metric = spf::Metric::Hops});
      if (direct == graph::kUnreachable) {
        EXPECT_FALSE(r.delivered());
      } else {
        ASSERT_TRUE(r.delivered()) << s << "->" << t;
        EXPECT_EQ(static_cast<graph::Weight>(r.hops), direct);
      }
    }
  }
  // Recover in reverse order; everything returns to defaults.
  ctl_.recover_link(4);
  ctl_.recover_link(0);
  EXPECT_EQ(ctl_.pairs_under_restoration(), 0u);
}

TEST_F(ControllerRingTest, DisconnectingFailuresReportedAtIngress) {
  ctl_.fail_link(0);
  ctl_.fail_link(1);  // node 1 now isolated
  const ForwardResult r = ctl_.send(0, 1);
  EXPECT_EQ(r.status, ForwardStatus::NoFecEntry);
  ctl_.recover_link(0);
  EXPECT_TRUE(ctl_.send(0, 1).delivered());
}

TEST_F(ControllerRingTest, RouterFailureAndRecovery) {
  ctl_.fail_router(3);
  for (NodeId s = 0; s < 8; ++s) {
    if (s == 3) continue;
    for (NodeId t = 0; t < 8; ++t) {
      if (t == 3 || s == t) continue;
      const ForwardResult r = ctl_.send(s, t);
      const auto direct =
          spf::distance(g_, s, t, ctl_.failures(),
                        spf::SpfOptions{.metric = spf::Metric::Hops});
      if (direct == graph::kUnreachable) {
        EXPECT_FALSE(r.delivered());
      } else {
        ASSERT_TRUE(r.delivered()) << s << "->" << t;
        EXPECT_EQ(static_cast<graph::Weight>(r.hops), direct);
      }
    }
  }
  ctl_.recover_router(3);
  EXPECT_EQ(ctl_.pairs_under_restoration(), 0u);
  EXPECT_TRUE(ctl_.send(2, 4).delivered());
}

TEST_F(ControllerRingTest, LocalEndRoutePatchDeliversWithoutFecUpdate) {
  // Apply the failure to the data plane and patch locally, but send with
  // the *old* FEC entries: packets entering the broken LSP get spliced at
  // the adjacent router. To isolate local RBPC we bypass fail_link's FEC
  // rewrite by patching first on a fresh controller... simplest: fail link,
  // then manually undo? Instead verify combined behavior: patch + reroute.
  ctl_.fail_link(0);
  const std::size_t patched =
      ctl_.local_patch(0, RbpcController::LocalMode::EndRoute);
  EXPECT_GT(patched, 0u);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s == t) continue;
      EXPECT_TRUE(ctl_.send(s, t).delivered()) << s << "->" << t;
    }
  }
  ctl_.recover_link(0);
  EXPECT_TRUE(ctl_.send(0, 1).delivered());
}

TEST_F(ControllerRingTest, RouterFailureLocalPatching) {
  // Fail router 2; its neighbors patch around it (end-route). All still-
  // connected pairs must deliver even before considering the FEC rewrites
  // (which fail_router also applies — the hybrid in the paper).
  ctl_.fail_router(2);
  const std::size_t patched = ctl_.local_patch_router(2);
  EXPECT_GT(patched, 0u);
  for (NodeId s = 0; s < 8; ++s) {
    if (s == 2) continue;
    for (NodeId t = 0; t < 8; ++t) {
      if (t == 2 || s == t) continue;
      EXPECT_TRUE(ctl_.send(s, t).delivered()) << s << "->" << t;
    }
  }
  ctl_.recover_router(2);
  EXPECT_TRUE(ctl_.send(1, 3).delivered());
  EXPECT_EQ(ctl_.pairs_under_restoration(), 0u);
}

TEST_F(ControllerRingTest, LocalPatchRouterRequiresFailure) {
  EXPECT_THROW(ctl_.local_patch_router(2), PreconditionError);
}

TEST_F(ControllerRingTest, LocalPatchRequiresDetectedFailure) {
  EXPECT_THROW(ctl_.local_patch(0, RbpcController::LocalMode::EndRoute),
               PreconditionError);
}

TEST_F(ControllerRingTest, ApiGuards) {
  EXPECT_THROW(ctl_.recover_link(0), PreconditionError);  // not failed yet
  ctl_.fail_link(0);
  EXPECT_THROW(ctl_.fail_link(0), PreconditionError);  // double fail
  ctl_.recover_link(0);
  EXPECT_THROW(ctl_.recover_link(0), PreconditionError);  // double recover
}

TEST(ControllerWeighted, StackDepthBoundedByTheorem2) {
  // After one link failure, every rewritten FEC entry pushes at most
  // 2k+1 = 3 labels (two base LSPs + one loose edge, Theorem 2 with k=1) —
  // and the paper's empirical claim is that 2 suffice almost always.
  Rng rng(71);
  const Graph g = topo::make_random_connected(24, 60, rng, 8);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();

  std::size_t rewritten = 0;
  std::size_t with_two = 0;
  for (EdgeId e = 0; e < std::min<std::size_t>(g.num_edges(), 12); ++e) {
    ctl.fail_link(e);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        if (s == t) continue;
        const mpls::FecEntry* fec = ctl.network().lsr(s).fec(t);
        if (fec == nullptr) continue;
        ASSERT_LE(fec->push.size(), 3u) << s << "->" << t;
        if (fec->push.size() > 1) {
          ++rewritten;
          if (fec->push.size() == 2) ++with_two;
        }
      }
    }
    ctl.recover_link(e);
  }
  ASSERT_GT(rewritten, 0u);
  // "Almost all broken paths are covered by only two basic paths."
  EXPECT_GT(static_cast<double>(with_two) / static_cast<double>(rewritten),
            0.8);
}

TEST(Controller, ProvisionGuards) {
  const Graph g = topo::make_ring(4);
  RbpcController ctl(g, spf::Metric::Hops);
  EXPECT_THROW(ctl.send(0, 1), PreconditionError);  // not provisioned
  ctl.provision();
  EXPECT_THROW(ctl.provision(), PreconditionError);  // double provision
}

// The same invariants on a weighted mesh: every (failure, pair) forwarding
// outcome matches the graph-level shortest path cost.
TEST(ControllerWeighted, RandomMeshEndToEnd) {
  Rng rng(61);
  const Graph g = topo::make_random_connected(24, 60, rng, 8);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();

  for (int trial = 0; trial < 6; ++trial) {
    const EdgeId e = static_cast<EdgeId>(rng.below(g.num_edges()));
    ctl.fail_link(e);
    for (int probe = 0; probe < 40; ++probe) {
      const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
      const NodeId t = static_cast<NodeId>(rng.below(g.num_nodes()));
      if (s == t) continue;
      const ForwardResult r = ctl.send(s, t);
      const auto direct = spf::distance(g, s, t, ctl.failures());
      if (direct == graph::kUnreachable) {
        EXPECT_FALSE(r.delivered());
        continue;
      }
      ASSERT_TRUE(r.delivered()) << s << "->" << t;
      // Verify the delivered route's cost equals the optimum.
      graph::Weight cost = 0;
      for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
        const auto edge = g.find_edge(r.trace[i], r.trace[i + 1]);
        ASSERT_TRUE(edge.has_value());
        cost += g.weight(*edge);
      }
      EXPECT_EQ(cost, direct) << s << "->" << t;
    }
    ctl.recover_link(e);
    EXPECT_EQ(ctl.pairs_under_restoration(), 0u);
  }
}

TEST(ControllerWeighted, EdgeBypassPatchKeepsDelivery) {
  Rng rng(67);
  const Graph g = topo::make_random_connected(16, 40, rng, 5);
  RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();
  const EdgeId e = 3;
  ctl.fail_link(e);
  ctl.local_patch(e, RbpcController::LocalMode::EdgeBypass);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      EXPECT_TRUE(ctl.send(s, t).delivered()) << s << "->" << t;
    }
  }
  ctl.recover_link(e);
  for (NodeId t = 1; t < g.num_nodes(); ++t) {
    EXPECT_TRUE(ctl.send(0, t).delivered());
  }
}

}  // namespace
}  // namespace rbpc::core
