// Unit tests for core/scenario: the paper's failure-sampling methodology.
#include <gtest/gtest.h>

#include <set>

#include "core/scenario.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rbpc::core {
namespace {

using graph::FailureMask;
using graph::Graph;
using graph::NodeId;

TEST(SamplePair, ProducesConnectedDistinctPairs) {
  const Graph g = topo::make_ring(10);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const SamplePair p = sample_pair(oracle, rng);
    EXPECT_NE(p.src, p.dst);
    ASSERT_FALSE(p.lsp.empty());
    EXPECT_EQ(p.lsp.source(), p.src);
    EXPECT_EQ(p.lsp.target(), p.dst);
  }
}

TEST(SamplePair, SkipsDisconnectedPairs) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const SamplePair p = sample_pair(oracle, rng);
    // Pairs are always within a component.
    EXPECT_TRUE((p.src <= 1 && p.dst <= 1) || (p.src >= 2 && p.dst >= 2));
  }
}

TEST(SamplePair, IsDeterministicPerSeed) {
  const Graph g = topo::make_ring(12);
  spf::DistanceOracle oracle(g, FailureMask{}, spf::Metric::Hops);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    const SamplePair pa = sample_pair(oracle, a);
    const SamplePair pb = sample_pair(oracle, b);
    EXPECT_EQ(pa.src, pb.src);
    EXPECT_EQ(pa.dst, pb.dst);
    EXPECT_EQ(pa.lsp, pb.lsp);
  }
}

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest()
      : g_(topo::make_ring(8)),
        oracle_(g_, FailureMask{}, spf::Metric::Hops),
        rng_(5) {
    // Fixed pair with a 3-hop LSP: 0 -> 3.
    pair_.src = 0;
    pair_.dst = 3;
    pair_.lsp = oracle_.canonical_path(0, 3);
  }
  Graph g_;
  spf::DistanceOracle oracle_;
  Rng rng_;
  SamplePair pair_;
};

TEST_F(ScenarioTest, OneLinkFailsEachLspLink) {
  const auto scenarios = scenarios_for(pair_, FailureClass::OneLink, rng_);
  ASSERT_EQ(scenarios.size(), 3u);
  std::set<graph::EdgeId> failed;
  for (const auto& sc : scenarios) {
    ASSERT_EQ(sc.failed_edges.size(), 1u);
    EXPECT_TRUE(sc.mask.edge_failed(sc.failed_edges[0]));
    EXPECT_TRUE(pair_.lsp.uses_edge(sc.failed_edges[0]));
    failed.insert(sc.failed_edges[0]);
  }
  EXPECT_EQ(failed.size(), 3u);  // all distinct
}

TEST_F(ScenarioTest, TwoLinksEnumeratesPairs) {
  const auto scenarios = scenarios_for(pair_, FailureClass::TwoLinks, rng_);
  EXPECT_EQ(scenarios.size(), 3u);  // C(3,2)
  for (const auto& sc : scenarios) {
    EXPECT_EQ(sc.failed_edges.size(), 2u);
    EXPECT_NE(sc.failed_edges[0], sc.failed_edges[1]);
    EXPECT_EQ(sc.mask.failed_edge_count(), 2u);
  }
}

TEST_F(ScenarioTest, OneRouterFailsInteriorOnly) {
  const auto scenarios = scenarios_for(pair_, FailureClass::OneRouter, rng_);
  ASSERT_EQ(scenarios.size(), 2u);  // routers 1, 2
  for (const auto& sc : scenarios) {
    ASSERT_EQ(sc.failed_nodes.size(), 1u);
    const NodeId v = sc.failed_nodes[0];
    EXPECT_NE(v, pair_.src);
    EXPECT_NE(v, pair_.dst);
    EXPECT_TRUE(sc.mask.node_failed(v));
  }
}

TEST_F(ScenarioTest, TwoRoutersEnumeratesInteriorPairs) {
  const auto scenarios = scenarios_for(pair_, FailureClass::TwoRouters, rng_);
  EXPECT_EQ(scenarios.size(), 1u);  // C(2,2)
  EXPECT_EQ(scenarios[0].failed_nodes.size(), 2u);
}

TEST_F(ScenarioTest, AdjacentPairHasNoRouterScenarios) {
  SamplePair adj;
  adj.src = 0;
  adj.dst = 1;
  adj.lsp = oracle_.canonical_path(0, 1);
  EXPECT_TRUE(scenarios_for(adj, FailureClass::OneRouter, rng_).empty());
  EXPECT_TRUE(scenarios_for(adj, FailureClass::TwoLinks, rng_).empty());
  EXPECT_EQ(scenarios_for(adj, FailureClass::OneLink, rng_).size(), 1u);
}

TEST_F(ScenarioTest, CapLimitsCombinatorialCases) {
  // Long LSP on a big ring: 0 -> 10 has 10 links -> C(10,2) = 45 pairs.
  const Graph big = topo::make_ring(21);
  spf::DistanceOracle oracle(big, FailureMask{}, spf::Metric::Hops);
  SamplePair pair;
  pair.src = 0;
  pair.dst = 10;
  pair.lsp = oracle.canonical_path(0, 10);
  ASSERT_EQ(pair.lsp.hops(), 10u);
  const auto capped = scenarios_for(pair, FailureClass::TwoLinks, rng_, 10);
  EXPECT_EQ(capped.size(), 10u);
  const auto full = scenarios_for(pair, FailureClass::TwoLinks, rng_, 1000);
  EXPECT_EQ(full.size(), 45u);
}

TEST_F(ScenarioTest, ToStringCoversClasses) {
  EXPECT_STREQ(to_string(FailureClass::OneLink), "one link failure");
  EXPECT_STREQ(to_string(FailureClass::TwoLinks), "two link failures");
  EXPECT_STREQ(to_string(FailureClass::OneRouter), "one router failure");
  EXPECT_STREQ(to_string(FailureClass::TwoRouters), "two router failures");
}

TEST_F(ScenarioTest, ValidatesArguments) {
  SamplePair empty;
  EXPECT_THROW(scenarios_for(empty, FailureClass::OneLink, rng_),
               PreconditionError);
  EXPECT_THROW(scenarios_for(pair_, FailureClass::OneLink, rng_, 0),
               PreconditionError);
}

}  // namespace
}  // namespace rbpc::core
