// The shared 54-topology test corpus: the paper's gadgets, two structural
// stress shapes (a high-degree hub, a long-diameter ladder) plus three
// random families (connected meshes, Waxman, Barabási–Albert) at fixed
// seeds.
//
// One definition, three consumers — the batch differential harness
// (test_batch), the incremental-repair differential harness
// (test_incremental) and the chaos drills (test_chaos) must all sweep the
// *same* topologies, so a corpus change automatically re-tightens every
// suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::testing {

struct TopoCase {
  std::string name;
  graph::Graph g;
};

/// Wheel: hub 0 spoked to a 16-node rim ring. The hub has degree 16 —
/// far above the random families' maxima — so hub-adjacent reroutes fan a
/// single link event out across many demands, and every spoke is two-hop
/// bypassable via the rim (2-edge-connected: all link failures restorable).
inline graph::Graph make_wheel16() {
  constexpr std::size_t kRim = 16;
  graph::GraphBuilder b(kRim + 1);
  for (std::size_t i = 0; i < kRim; ++i) {
    const graph::NodeId rim = static_cast<graph::NodeId>(1 + i);
    const graph::NodeId next = static_cast<graph::NodeId>(1 + (i + 1) % kRim);
    b.add_edge(0, rim);
    b.add_edge(rim, next);
  }
  return b.build();
}

inline std::vector<TopoCase> corpus() {
  std::vector<TopoCase> out;
  out.push_back({"comb4", topo::make_comb(4).g});
  out.push_back({"wheel16", make_wheel16()});
  // Long-diameter stress: a 2 x 16 ladder (diameter ~16, 2-edge-connected),
  // the worst case for path-length-proportional work per reroute.
  out.push_back({"ladder2x16", topo::make_grid(2, 16)});
  out.push_back({"weighted_chain3", topo::make_weighted_chain(3).g});
  out.push_back({"two_level_star12", topo::make_two_level_star(12).g});
  out.push_back({"four_cycle", topo::make_four_cycle()});
  out.push_back({"parallel_chain3", topo::make_parallel_chain(3).g});
  out.push_back({"ring9", topo::make_ring(9)});
  out.push_back({"grid4x5", topo::make_grid(4, 5)});
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(1000 + seed);
    const std::size_t n = 12 + 2 * static_cast<std::size_t>(seed);
    out.push_back({"mesh" + std::to_string(seed),
                   topo::make_random_connected(n, n + n / 2 + 4, rng, 9)});
  }
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(2000 + seed);
    out.push_back({"waxman" + std::to_string(seed),
                   topo::make_waxman(18 + static_cast<std::size_t>(seed),
                                     0.4, 0.35, rng)});
  }
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(3000 + seed);
    out.push_back(
        {"ba" + std::to_string(seed),
         topo::make_barabasi_albert(16 + static_cast<std::size_t>(seed), 2,
                                    0.3, rng, 0.4)});
  }
  return out;
}

}  // namespace rbpc::testing
