// The shared 60-topology test corpus: the paper's gadgets, two structural
// stress shapes (a high-degree hub, a long-diameter ladder), six
// SRLG-prone shapes (parallel-span ladders, dual-plane cores,
// rings-of-rings — topologies where correlated link groups are the natural
// failure unit), plus three random families (connected meshes, Waxman,
// Barabási–Albert) at fixed seeds.
//
// One definition, many consumers — the batch differential harness
// (test_batch), the incremental-repair differential harness
// (test_incremental), the chaos drills (test_chaos) and the multi-failure
// suite (test_multi_failure) must all sweep the *same* topologies, so a
// corpus change automatically re-tightens every suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "topo/gadgets.hpp"
#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace rbpc::testing {

struct TopoCase {
  std::string name;
  graph::Graph g;
};

/// Wheel: hub 0 spoked to a 16-node rim ring. The hub has degree 16 —
/// far above the random families' maxima — so hub-adjacent reroutes fan a
/// single link event out across many demands, and every spoke is two-hop
/// bypassable via the rim (2-edge-connected: all link failures restorable).
inline graph::Graph make_wheel16() {
  constexpr std::size_t kRim = 16;
  graph::GraphBuilder b(kRim + 1);
  for (std::size_t i = 0; i < kRim; ++i) {
    const graph::NodeId rim = static_cast<graph::NodeId>(1 + i);
    const graph::NodeId next = static_cast<graph::NodeId>(1 + (i + 1) % kRim);
    b.add_edge(0, rim);
    b.add_edge(rim, next);
  }
  return b.build();
}

/// Parallel-span ladder: a 2 x `length` ladder whose rungs are doubled —
/// each rung is two parallel links in one conduit (the classic same-trench
/// shared-risk group). Cutting a conduit severs both spans at once, yet the
/// rails keep the graph connected, so every SRLG cut is restorable.
inline graph::Graph make_parallel_span_ladder(std::size_t length) {
  graph::GraphBuilder b(2 * length);
  for (std::size_t i = 0; i + 1 < length; ++i) {
    b.add_edge(static_cast<graph::NodeId>(i),
               static_cast<graph::NodeId>(i + 1));
    b.add_edge(static_cast<graph::NodeId>(length + i),
               static_cast<graph::NodeId>(length + i + 1));
  }
  for (std::size_t i = 0; i < length; ++i) {
    const graph::NodeId top = static_cast<graph::NodeId>(i);
    const graph::NodeId bottom = static_cast<graph::NodeId>(length + i);
    b.add_edge(top, bottom);
    b.add_edge(top, bottom);  // the parallel span sharing the conduit
  }
  return b.build();
}

/// Dual-plane core: each of `sites` sites hosts one router per plane
/// (a_i = i, b_i = sites + i); each plane is a ring, and the planes meet by
/// a cross link per site. A whole-plane outage (a regional SRLG) leaves the
/// other plane carrying every site — the redundancy pattern of real ISP
/// cores, and a tie-heavy unit-weight shape (both planes offer equal-cost
/// routes everywhere).
inline graph::Graph make_dual_plane_core(std::size_t sites) {
  graph::GraphBuilder b(2 * sites);
  for (std::size_t i = 0; i < sites; ++i) {
    const graph::NodeId a = static_cast<graph::NodeId>(i);
    const graph::NodeId a_next = static_cast<graph::NodeId>((i + 1) % sites);
    const graph::NodeId bb = static_cast<graph::NodeId>(sites + i);
    const graph::NodeId b_next =
        static_cast<graph::NodeId>(sites + (i + 1) % sites);
    b.add_edge(a, a_next);
    b.add_edge(bb, b_next);
    b.add_edge(a, bb);
  }
  return b.build();
}

/// Ring of rings: `rings` local rings of `ring_size` routers each, chained
/// into a super-ring by dual-homed gateway pairs (nodes 0 and 1 of each
/// ring link to nodes 0 and 1 of the next). The two inter-ring links of a
/// hop follow one right-of-way — a natural SRLG whose cut forces traffic
/// the long way around the super-ring.
inline graph::Graph make_ring_of_rings(std::size_t rings,
                                       std::size_t ring_size) {
  graph::GraphBuilder b(rings * ring_size);
  const auto at = [ring_size](std::size_t r, std::size_t i) {
    return static_cast<graph::NodeId>(r * ring_size + i);
  };
  for (std::size_t r = 0; r < rings; ++r) {
    for (std::size_t i = 0; i < ring_size; ++i) {
      b.add_edge(at(r, i), at(r, (i + 1) % ring_size));
    }
    const std::size_t next = (r + 1) % rings;
    b.add_edge(at(r, 0), at(next, 0));
    b.add_edge(at(r, 1), at(next, 1));
  }
  return b.build();
}

inline std::vector<TopoCase> corpus() {
  std::vector<TopoCase> out;
  out.push_back({"comb4", topo::make_comb(4).g});
  out.push_back({"wheel16", make_wheel16()});
  // Long-diameter stress: a 2 x 16 ladder (diameter ~16, 2-edge-connected),
  // the worst case for path-length-proportional work per reroute.
  out.push_back({"ladder2x16", topo::make_grid(2, 16)});
  out.push_back({"weighted_chain3", topo::make_weighted_chain(3).g});
  out.push_back({"two_level_star12", topo::make_two_level_star(12).g});
  out.push_back({"four_cycle", topo::make_four_cycle()});
  out.push_back({"parallel_chain3", topo::make_parallel_chain(3).g});
  out.push_back({"ring9", topo::make_ring(9)});
  out.push_back({"grid4x5", topo::make_grid(4, 5)});
  // SRLG-prone shapes: correlated link groups are the natural failure unit.
  out.push_back({"span_ladder6", make_parallel_span_ladder(6)});
  out.push_back({"span_ladder10", make_parallel_span_ladder(10)});
  out.push_back({"dual_plane6", make_dual_plane_core(6)});
  out.push_back({"dual_plane8", make_dual_plane_core(8)});
  out.push_back({"ring_of_rings3x5", make_ring_of_rings(3, 5)});
  out.push_back({"ring_of_rings4x4", make_ring_of_rings(4, 4)});
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(1000 + seed);
    const std::size_t n = 12 + 2 * static_cast<std::size_t>(seed);
    out.push_back({"mesh" + std::to_string(seed),
                   topo::make_random_connected(n, n + n / 2 + 4, rng, 9)});
  }
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(2000 + seed);
    out.push_back({"waxman" + std::to_string(seed),
                   topo::make_waxman(18 + static_cast<std::size_t>(seed),
                                     0.4, 0.35, rng)});
  }
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(3000 + seed);
    out.push_back(
        {"ba" + std::to_string(seed),
         topo::make_barabasi_albert(16 + static_cast<std::size_t>(seed), 2,
                                    0.3, rng, 0.4)});
  }
  return out;
}

}  // namespace rbpc::testing
