// The technology trade-off of Section 1: restoration by concatenation pays
// a per-junction cost (nothing in MPLS thanks to the stack; an O-E-O hop
// with a layer-3 lookup in WDM; a VC lookup in ATM) but saves the full
// setup/tear-down of new connections. This example measures the actual
// junction counts RBPC produces on the ISP topology and weighs them under
// each technology's cost model.
//
//   "The higher the [setup/tear-down] cost and the lower the
//    [concatenation cost], the more attractive our scheme."
//
// Flags: --seed N, --samples N
#include <iostream>

#include "core/base_set.hpp"
#include "core/restoration.hpp"
#include "core/scenario.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rbpc;

/// Per-technology cost model, in arbitrary "operation" units.
struct Technology {
  const char* name;
  double junction_cost;  ///< per concatenation point on the restored path
  double setup_cost;     ///< establish + tear down one end-to-end connection
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 1);
  const std::size_t samples = args.get_uint("samples", 150);

  Rng topo_rng(seed);
  const graph::Graph g = topo::make_isp_like(topo_rng, /*weighted=*/true);
  std::cout << "topology: " << g.summary() << "\n\n";

  spf::DistanceOracle oracle(g, graph::FailureMask{}, spf::Metric::Weighted);
  core::CanonicalBaseSet base(oracle);

  IntHistogram junctions;
  StatAccumulator pieces;
  Rng rng(seed * 1000 + 41);
  for (std::size_t i = 0; i < samples; ++i) {
    Rng sample_rng = rng.fork();
    const core::SamplePair pair = core::sample_pair(oracle, sample_rng);
    for (const auto& sc : core::scenarios_for(
             pair, core::FailureClass::OneLink, sample_rng)) {
      const core::Restoration r =
          core::source_rbpc_restore(base, pair.src, pair.dst, sc.mask);
      if (!r.restored()) continue;
      pieces.add(static_cast<double>(r.pc_length()));
      junctions.add(static_cast<std::int64_t>(r.pc_length()) - 1);
    }
  }

  std::cout << "Junctions per restoration (pieces - 1), " << junctions.total()
            << " cases:\n";
  TablePrinter hist({"junctions", "share"});
  for (const auto& [k, count] : junctions.bins()) {
    hist.add_row({std::to_string(k),
                  TablePrinter::percent(junctions.fraction(k))});
  }
  std::cout << hist.to_text() << '\n';

  // Cost models: MPLS junctions are label pushes (~free); WDM junctions
  // surface to layer 3 (lookup + O-E-O); ATM junctions are a VC lookup.
  // Setup costs reflect signalling + cross-connect programming effort.
  const Technology techs[] = {
      {"MPLS (label stack)", 0.0, 50.0},
      {"WDM (O-E-O at junctions)", 10.0, 500.0},
      {"ATM (VC lookup at junctions)", 2.0, 40.0},
  };
  const double avg_junctions = pieces.mean() - 1.0;

  std::cout << "Per-restoration cost: concatenate (junctions x junction "
               "cost) vs re-establish (setup):\n";
  TablePrinter table({"technology", "concatenation cost", "re-establishment",
                      "winner", "ratio"});
  for (const Technology& t : techs) {
    const double concat = avg_junctions * t.junction_cost;
    const bool rbpc_wins = concat < t.setup_cost;
    table.add_row({t.name, TablePrinter::num(concat, 1),
                   TablePrinter::num(t.setup_cost, 1),
                   rbpc_wins ? "RBPC" : "re-signal",
                   concat == 0.0 ? "inf"
                                 : TablePrinter::num(t.setup_cost / concat, 1) +
                                       "x"});
  }
  std::cout << table.to_text();
  std::cout << "\nWith ~" << TablePrinter::num(avg_junctions, 2)
            << " junctions per restoration, concatenation wins by orders of "
               "magnitude in MPLS\nand remains attractive in WDM (huge setup "
               "costs); ATM is the marginal case — \nexactly the paper's "
               "Section-1 assessment.\n";
  return 0;
}
