// Quickstart: the full RBPC story on a small network in ~60 lines of API.
//
//   1. Build a topology.
//   2. Provision the base LSP set (all-pairs canonical shortest paths).
//   3. Send a packet — it label-switches along the shortest path.
//   4. Fail a link — source-router RBPC rewrites one FEC entry so packets
//      travel a *concatenation* of surviving base LSPs. No new labels, no
//      ILM change, no signalling.
//   5. Recover the link — the original route returns.
//
// Run: ./quickstart
#include <iostream>

#include "core/controller.hpp"
#include "topo/generators.hpp"

int main() {
  using namespace rbpc;

  // An 8-router ring: the smallest topology where failures force real
  // detours.
  const graph::Graph g = topo::make_ring(8);
  std::cout << "topology: " << g.summary() << "\n\n";

  core::RbpcController rbpc(g, spf::Metric::Hops);
  rbpc.provision();
  std::cout << "provisioned " << rbpc.num_base_lsps()
            << " base LSPs (one per ordered pair + one per link "
               "direction)\n\n";

  auto show = [&](const char* when) {
    const mpls::ForwardResult r = rbpc.send(0, 3);
    std::cout << when << ": 0 -> 3 " << to_string(r.status) << " via ";
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      std::cout << (i ? " - " : "") << r.trace[i];
    }
    std::cout << " (" << r.hops << " hops)\n";
  };

  show("before failure  ");

  // Fail the link between routers 1 and 2 (edge 1 of the ring). The source
  // router learns of it (think OSPF flood) and swaps its FEC entry for a
  // two-label stack: base LSP 0->x concatenated with base LSP x->3.
  std::cout << "\n*** link (1,2) fails ***\n";
  rbpc.fail_link(1);
  std::cout << rbpc.pairs_under_restoration()
            << " source/destination pairs switched to concatenated "
               "restoration routes\n\n";
  show("after failure   ");

  std::cout << "\n*** link (1,2) recovers ***\n";
  rbpc.recover_link(1);
  show("after recovery  ");

  std::cout << "\nEvery ILM table was left untouched throughout — "
               "restoration is a source-side label-stack change.\n";
  return 0;
}
