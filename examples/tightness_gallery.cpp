// A guided tour of the paper's hand-constructed examples (Figures 2-5 and
// the Theorem-3 discussion), with each claim measured live.
//
// Flags: --k N (gadget size, default 4)
#include <iostream>

#include "core/base_set.hpp"
#include "core/decompose.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "topo/gadgets.hpp"
#include "util/cli.hpp"

namespace {

using namespace rbpc;
using graph::FailureMask;
using graph::Path;

void banner(const char* text) {
  std::cout << "\n=== " << text << " ===\n";
}

core::Decomposition decompose(const graph::Graph& g, spf::Metric metric,
                              graph::NodeId s, graph::NodeId t,
                              const FailureMask& mask) {
  spf::DistanceOracle oracle(g, FailureMask{}, metric);
  core::AllPairsShortestBaseSet base(oracle);
  const Path backup = spf::shortest_path(
      g, s, t, mask, spf::SpfOptions{.metric = metric, .padded = true});
  std::cout << "restoration route: " << backup.to_string() << "\n";
  const auto d = core::greedy_decompose(base, backup);
  std::cout << "decomposes into " << d.size() << " pieces (" << d.base_count()
            << " base paths, " << d.edge_count() << " loose edges):\n";
  for (std::size_t i = 0; i < d.size(); ++i) {
    std::cout << "  [" << (d.is_base[i] ? "path" : "edge") << "] "
              << d.pieces[i].to_string() << "\n";
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t k = args.get_uint("k", 4);

  banner("Figure 2: the comb — Theorem 1 is tight");
  {
    const auto comb = topo::make_comb(k);
    std::cout << "comb(" << k << "): spine s=u0..u" << k
              << " with a tooth over each spine edge; fail all " << k
              << " spine edges.\nTooth tops are never interior to a "
                 "shortest path, so every decomposition\nmust break at "
                 "each tooth: k+1 = " << (k + 1) << " pieces.\n";
    decompose(comb.g, spf::Metric::Hops, comb.s, comb.t,
              FailureMask::of_edges(comb.spine_edges));
  }

  banner("Figure 3: the weighted chain — Theorem 2 is tight");
  {
    const auto chain = topo::make_weighted_chain(k);
    std::cout << "Alternating unique-shortest segments and parallel pairs "
                 "{w, w+eps}; fail the\ncheap edge of each pair. The "
                 "surviving w+eps edges lie on no shortest path,\nso they "
                 "appear as k = " << k << " loose edges between k+1 = "
              << (k + 1) << " base paths.\n";
    decompose(chain.g, spf::Metric::Weighted, chain.s, chain.t,
              FailureMask::of_edges(chain.cheap_parallel_edges));
  }

  banner("Figure 4: router failure can cost Theta(n) concatenations");
  {
    const std::size_t n = 2 * k + 6;
    const auto star = topo::make_two_level_star(n);
    std::cout << "Hub v adjacent to all " << (n - 1)
              << " routers; all pairs at distance <= 2 via v.\nFail v: the "
                 "only s-t route is the chain, and shortest paths have <= 2 "
                 "hops,\nso ~(n-2)/2 = " << ((n - 2) / 2)
              << " pieces are needed.\n";
    decompose(star.g, spf::Metric::Hops, star.s, star.t,
              FailureMask::of_nodes({star.hub}));
  }

  banner("Figure 5: Theorem 1 fails on directed graphs");
  {
    const std::size_t m = 3 * k;
    const auto gadget = topo::make_directed_counterexample(m);
    std::cout << "Directed chain x0 -> .. -> x" << m
              << " plus shortcuts x_i -> a -> b -> x_j making every pair "
                 "at most 3 apart.\nFail the single edge (a,b): pieces are "
                 "capped at 3 hops, so ceil(m/3) = "
              << ((m + 2) / 3) << " pieces after ONE failure.\n";
    decompose(gadget.g, spf::Metric::Hops, gadget.s, gadget.t,
              FailureMask::of_edges({gadget.ab_edge}));
  }

  banner("Theorem 3 discussion: parallel chain needs 2k+1 with a padded set");
  {
    const auto pc = topo::make_parallel_chain(k);
    spf::DistanceOracle oracle(pc.g, FailureMask{}, spf::Metric::Hops);
    core::CanonicalBaseSet base(oracle);
    FailureMask mask;
    std::size_t failed = 0;
    for (std::size_t i = 1; i < pc.pairs.size() && failed < k; i += 2) {
      const auto u = static_cast<graph::NodeId>(i);
      mask.fail_edge(oracle.canonical_path(u, u + 1).edge(0));
      ++failed;
    }
    const Path backup = spf::shortest_path(
        pc.g, pc.s, pc.t, mask,
        spf::SpfOptions{.metric = spf::Metric::Hops, .padded = true});
    const auto d = core::greedy_decompose(base, backup);
    std::cout << "chain of " << pc.pairs.size()
              << " parallel pairs; fail the padding-chosen edge of each odd "
                 "pair.\nWith the one-path-per-pair base set the restoration "
                 "needs " << d.size() << " components\n(2k+1 = "
              << (2 * k + 1) << "): the " << d.edge_count()
              << " surviving twins are not base paths.\n";
  }

  std::cout << "\nAll five constructions behave exactly as the paper "
               "argues.\n";
  return 0;
}
