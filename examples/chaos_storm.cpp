// Chaos storm: what the control plane looks like when the network lies
// to it.
//
// Runs one chaos drill on a mesh and narrates it: topology transitions
// are announced through a fault-injected LSA flood (loss, delay jitter,
// duplication, link flaps), so the RBPC controller reroutes from a stale
// view while the data plane enforces the ground truth. With the
// graceful-degradation ladder on, probes that land in the stale window
// keep flowing over retained chains or are retried with backoff; after
// the storm quiesces, generation-numbered LSAs plus periodic refresh have
// converged the view and the classic exact invariant holds again.
//
// Prints the drill's event trace (first N lines), the fault/recovery
// accounting, and the degradation-ladder counters — then replays the same
// seed to show the whole storm is deterministic.
//
// Flags: --seed N, --nodes N, --edges N, --events N, --loss X (LSA loss
//        probability), --flaps N (extra down/up bounces per failure),
//        --trace N (trace lines to print, 0 = none), --degrade B
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "chaos/chaos_drill.hpp"
#include "core/controller.hpp"
#include "graph/graph.hpp"
#include "spf/metric.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace rbpc;
  using graph::EdgeId;
  using graph::FailureMask;
  using graph::NodeId;

  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 7);
  const std::size_t nodes = args.get_uint("nodes", 24);
  const std::size_t edges = args.get_uint("edges", 48);
  const std::size_t events = args.get_uint("events", 12);
  const double loss = args.get_double("loss", 0.1);
  const std::size_t flaps = args.get_uint("flaps", 1);
  const std::size_t trace_lines = args.get_uint("trace", 12);
  const bool degrade = args.get_bool("degrade", true);

  Rng topo_rng(seed);
  const graph::Graph g =
      topo::make_random_connected(nodes, edges, topo_rng, 9);
  std::cout << "mesh: " << g.summary() << "\n"
            << "storm: " << events << " events, LSA loss "
            << loss * 100 << "%, " << flaps
            << " extra flap(s) per failure, degradation ladder "
            << (degrade ? "ON" : "OFF") << "\n\n";

  chaos::ChaosDrillConfig cfg;
  cfg.events = events;
  cfg.faults.lsa_loss = loss;
  cfg.faults.lsa_jitter = 2.0;
  cfg.faults.lsa_dup = 0.1;
  cfg.faults.detect_jitter = 0.5;
  cfg.faults.miss_detect = loss / 2;
  cfg.faults.flap_count = flaps;

  auto run_once = [&] {
    core::RbpcController ctl(g, spf::Metric::Weighted);
    ctl.set_graceful_degradation(degrade);
    ctl.provision();
    core::DrillActions a;
    a.fail_link = [&ctl](EdgeId e) { ctl.fail_link(e); };
    a.recover_link = [&ctl](EdgeId e) { ctl.recover_link(e); };
    a.send = [&ctl](NodeId u, NodeId v) { return ctl.send(u, v); };
    a.failures = [&ctl]() -> const FailureMask& { return ctl.failures(); };
    a.set_data_failures = [&ctl](const FailureMask& m) {
      ctl.network().set_failures(m);
    };
    Rng rng(seed);
    chaos::ChaosReport r =
        chaos::run_chaos_drill(g, spf::Metric::Weighted, a, cfg, rng);
    return std::make_pair(std::move(r), ctl.degrade_stats());
  };

  const auto [report, stats] = run_once();

  if (trace_lines > 0) {
    std::cout << "event trace (first " << trace_lines << " of "
              << report.trace.size() << " lines):\n";
    for (std::size_t i = 0; i < report.trace.size() && i < trace_lines; ++i) {
      std::cout << "  " << report.trace[i] << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "control plane under fire:\n"
            << "  transitions announced   " << report.transitions << "\n"
            << "  LSAs applied            " << report.lsa_applied << "\n"
            << "  LSAs lost in flight     " << report.lsa_lost << "\n"
            << "  detections missed       " << report.lsa_missed << "\n"
            << "  duplicates discarded    " << report.lsa_duplicates << "\n"
            << "  stale LSAs discarded    " << report.lsa_stale << "\n"
            << "  superseded + cancelled  " << report.lsa_cancelled << "\n"
            << "  refresh epochs          " << report.refresh_epochs << "\n"
            << "  max staleness           " << report.max_staleness << "\n\n";

  std::cout << "data plane during churn:\n"
            << "  probes sent             " << report.probes << "\n"
            << "  delivered               " << report.delivered << "\n"
            << "  ... after a retry       " << report.delivered_after_retry
            << "\n"
            << "  retries                 " << report.retries << "\n"
            << "  TTL-guarded loops       " << report.loops << "\n\n";

  std::cout << "degradation ladder:\n"
            << "  stale-FEC retentions    " << stats.stale_fec << "\n"
            << "  no-route declarations   " << stats.no_route << "\n"
            << "  pairs still degraded    " << stats.degraded_pairs << "\n\n";

  std::cout << "verdict: "
            << (report.partitioned ? "control plane partitioned, "
                                   : "converged, ")
            << report.during_violations.size() << " during-churn and "
            << report.post_violations.size()
            << " post-quiescence violations\n";
  for (const std::string& v : report.during_violations) {
    std::cout << "  during: " << v << "\n";
  }
  for (const std::string& v : report.post_violations) {
    std::cout << "  post:   " << v << "\n";
  }

  // Same seed, same storm: the whole pipeline is deterministic.
  const auto [replay, replay_stats] = run_once();
  const bool identical = replay.trace == report.trace &&
                         replay.lsa_applied == report.lsa_applied &&
                         replay.delivered == report.delivered;
  std::cout << "\nreplay with seed " << seed << ": "
            << (identical ? "identical event trace" : "TRACE DIVERGED")
            << "\n";

  return (report.ok() && identical) ? 0 : 1;
}
