// ISP failover drill: the paper's primary scenario at full fidelity.
//
// Provisions the canonical base LSP set on a ~200-router ISP-like backbone
// (OSPF inverse-capacity weights), then walks through a failure drill:
// fail a set of links one at a time, measure restoration through the real
// label tables (packets forwarded through the MPLS simulator), and report
// the table-size economics RBPC is designed around.
//
// Flags: --seed N, --failures N, --probes N
#include <iostream>

#include "core/controller.hpp"
#include "graph/analysis.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rbpc;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 1);
  const std::size_t num_failures = args.get_uint("failures", 5);
  const std::size_t probes = args.get_uint("probes", 400);

  Rng rng(seed);
  const graph::Graph g = topo::make_isp_like(rng, /*weighted=*/true);
  std::cout << "topology: " << g.summary() << "\n";

  core::RbpcController rbpc(g, spf::Metric::Weighted);
  rbpc.provision();
  std::cout << "provisioned " << rbpc.num_base_lsps() << " base LSPs; "
            << rbpc.network().total_ilm_entries()
            << " ILM entries total (max per router "
            << rbpc.network().max_ilm_entries() << ")\n\n";

  TablePrinter table({"failed link", "pairs rerouted", "probe delivery",
                      "optimal routes", "note"});

  Rng probe_rng(seed * 7 + 1);
  for (std::size_t f = 0; f < num_failures; ++f) {
    const auto e = static_cast<graph::EdgeId>(probe_rng.below(g.num_edges()));
    if (rbpc.failures().edge_failed(e)) continue;
    rbpc.fail_link(e);

    // Probe random pairs through the data plane and compare each delivered
    // route's cost with the graph-level optimum.
    std::size_t delivered = 0;
    std::size_t optimal = 0;
    std::size_t expected_unreachable = 0;
    for (std::size_t p = 0; p < probes; ++p) {
      const auto s = static_cast<graph::NodeId>(probe_rng.below(g.num_nodes()));
      const auto t = static_cast<graph::NodeId>(probe_rng.below(g.num_nodes()));
      if (s == t) continue;
      const auto want = spf::distance(g, s, t, rbpc.failures());
      const mpls::ForwardResult r = rbpc.send(s, t);
      if (want == graph::kUnreachable) {
        ++expected_unreachable;
        continue;
      }
      if (!r.delivered()) continue;
      ++delivered;
      graph::Weight cost = 0;
      for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
        cost += g.weight(*g.find_edge(r.trace[i], r.trace[i + 1]));
      }
      if (cost == want) ++optimal;
    }
    const auto& ed = g.edge(e);
    table.add_row({"(" + std::to_string(ed.u) + "," + std::to_string(ed.v) +
                       ") w=" + std::to_string(ed.weight),
                   std::to_string(rbpc.pairs_under_restoration()),
                   std::to_string(delivered),
                   std::to_string(optimal) + "/" + std::to_string(delivered),
                   expected_unreachable
                       ? std::to_string(expected_unreachable) + " unreachable"
                       : ""});
  }
  std::cout << table.to_text() << "\n";

  std::cout << "cumulative failures in effect: "
            << rbpc.failures().failed_edge_count() << "; pairs on "
            << "concatenated restoration routes: "
            << rbpc.pairs_under_restoration() << "\n";
  std::cout << "\nThe 'optimal routes' column shows every delivered packet "
               "followed a min-cost\nsurviving route — restoration quality "
               "was never compromised (the paper's\ncentral claim vs. "
               "connectivity-only backup schemes).\n";
  return 0;
}
