// Hybrid restoration timeline: local RBPC patches instantly (possibly on a
// stretched route); source RBPC re-optimizes once the link-state flood
// reaches the source. This example plays the sequence through the
// discrete-event queue and the real MPLS tables.
//
// Flags: --seed N, --link-delay X, --detect-delay X
#include <cstdio>
#include <iostream>

#include "core/controller.hpp"
#include "core/hybrid.hpp"
#include "lsdb/event_queue.hpp"
#include "lsdb/lsdb.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace rbpc;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 3);
  lsdb::FloodParams flood;
  flood.link_delay = args.get_double("link-delay", 1.0);
  flood.detect_delay = args.get_double("detect-delay", 0.05);
  flood.process_delay = 0.1;

  Rng rng(seed);
  const graph::Graph g = topo::make_isp_like(rng, /*weighted=*/true);
  std::cout << "topology: " << g.summary() << "\n\n";

  // Pick a pair whose LSP is long enough that the source sits several flood
  // hops from the failure.
  spf::DistanceOracle oracle(g, graph::FailureMask{}, spf::Metric::Weighted);
  graph::Path lsp;
  graph::NodeId src = 0;
  graph::NodeId dst = 0;
  while (lsp.hops() < 5) {
    src = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
    dst = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
    if (src == dst) continue;
    lsp = oracle.canonical_path(src, dst);
  }
  const std::size_t fail_idx = lsp.hops() - 1;  // fail the far-end link
  std::cout << "LSP " << src << " -> " << dst << ": " << lsp.to_string()
            << "\nfailing its link #" << fail_idx
            << " (the farthest from the source)\n\n";

  // Graph-level timeline (what each scheme would route).
  const core::HybridTimeline tl = core::hybrid_timeline(
      g, spf::Metric::Weighted, lsp, fail_idx, /*t0=*/0.0, flood,
      /*use_edge_bypass=*/true);
  if (!tl.restored) {
    std::cout << "failure disconnected the pair; nothing to restore\n";
    return 0;
  }

  std::printf("t=%-8.2f link fails; traffic on the LSP is blackholed\n",
              tl.fail_time);
  std::printf(
      "t=%-8.2f adjacent router detects, splices its ILM entry "
      "(edge-bypass)\n           interim route: %s\n           interim "
      "stretch: %.3fx optimal\n",
      tl.local_patch_time, tl.local_route.to_string().c_str(),
      tl.interim_stretch);
  std::printf(
      "t=%-8.2f LSA flood reaches the source; FEC entry rewritten to the "
      "min-cost\n           concatenation: %s\n",
      tl.source_patch_time, tl.final_route.to_string().c_str());

  // Replay through the MPLS tables: fail, local patch only, then source
  // reroute, verifying the data plane at each stage.
  std::cout << "\nreplaying through the label tables:\n";
  core::RbpcController ctl(g, spf::Metric::Weighted);
  ctl.provision();

  auto report = [&](const char* stage) {
    const mpls::ForwardResult r = ctl.send(src, dst);
    std::cout << "  " << stage << ": " << to_string(r.status);
    if (r.delivered()) std::cout << " in " << r.hops << " hops";
    std::cout << "\n";
  };

  report("before failure                    ");
  // Stage 1: data plane down, control plane not yet reacted. Emulate by
  // failing only the forwarding state.
  ctl.network().set_failures(graph::FailureMask::of_edges({lsp.edge(fail_idx)}));
  report("failed, no restoration yet        ");
  ctl.network().set_failures({});
  // Stage 2: full event — source RBPC plus a local patch.
  ctl.fail_link(lsp.edge(fail_idx));
  ctl.local_patch(lsp.edge(fail_idx),
                  core::RbpcController::LocalMode::EdgeBypass);
  report("after local patch + source reroute");
  ctl.recover_link(lsp.edge(fail_idx));
  report("after recovery                    ");

  std::cout << "\nThe window where traffic is lost is only "
               "[fail, local-patch) = "
            << (tl.local_patch_time - tl.fail_time)
            << " time units — the flood delay ("
            << (tl.source_patch_time - tl.fail_time)
            << ") is hidden behind the local splice.\n";
  return 0;
}
