// QoS route families over subnets (the paper's Section-1 motivation):
//
//   "Leading designs of QoS routing and traffic engineering in MPLS clouds
//    suggest employing shortest path routing over subnets of the original
//    network. Such restrictions might be ... all the OC48 links, all the
//    links with available capacity ... That is, different families of
//    shortest paths are maintained in the network; traditional shortest
//    paths, and shortest paths over different restrictions of the network."
//
// This example maintains three shortest-path families on the ISP topology —
// the full network, the "premium" subnet (backbone-grade links only), and a
// "low-latency" subnet (cheapest-weight links) — and shows that RBPC
// restores each family within its own subnet after a failure: the
// restriction is just another FailureMask layered under the failure.
//
// Flags: --seed N
#include <iostream>

#include <memory>

#include "graph/analysis.hpp"
#include "spf/oracle.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rbpc;
using graph::EdgeId;
using graph::FailureMask;
using graph::Graph;
using graph::NodeId;
using graph::Path;

/// A named restriction of the network: the family's subnet is everything
/// the restriction does not exclude.
struct Family {
  std::string name;
  FailureMask restriction;  ///< excluded links (a "virtual failure" layer)
};

FailureMask exclude_links_heavier_than(const Graph& g, graph::Weight cutoff) {
  FailureMask m;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.weight(e) > cutoff) m.fail_edge(e);
  }
  return m;
}

FailureMask combine(const FailureMask& a, const FailureMask& b) {
  FailureMask m = a;
  for (EdgeId e : b.failed_edges()) m.fail_edge(e);
  for (NodeId v : b.failed_nodes()) m.fail_node(v);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 1);

  Rng rng(seed);
  const Graph g = topo::make_isp_like(rng, /*weighted=*/true);
  std::cout << "topology: " << g.summary() << "\n\n";

  std::vector<Family> families;
  families.push_back({"best-effort (all links)", FailureMask{}});
  families.push_back(
      {"premium (weight <= 40: backbone + uplinks)",
       exclude_links_heavier_than(g, 40)});
  families.push_back(
      {"low-latency (weight <= 20: backbone grade)",
       exclude_links_heavier_than(g, 20)});

  // Each family routes over its own subnet: the restriction mask lives
  // inside the family's oracle, so "shortest path" means shortest within
  // the subnet.
  std::vector<std::unique_ptr<spf::DistanceOracle>> oracles;
  for (const Family& fam : families) {
    oracles.push_back(std::make_unique<spf::DistanceOracle>(
        g, fam.restriction, spf::Metric::Weighted));
  }

  // Pick a backbone pair present in every subnet.
  const NodeId s = 0;
  const NodeId t = 12;

  TablePrinter before({"family", "route", "cost", "subnet links"});
  std::vector<Path> primaries;
  for (std::size_t f = 0; f < families.size(); ++f) {
    const Path p = oracles[f]->canonical_path(s, t);
    primaries.push_back(p);
    std::size_t alive = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (families[f].restriction.edge_alive(g, e)) ++alive;
    }
    before.add_row({families[f].name,
                    p.empty() ? "(unreachable)" : p.to_string(),
                    p.empty() ? "-" : std::to_string(p.cost(g)),
                    std::to_string(alive)});
  }
  std::cout << "Families for " << s << " -> " << t << ":\n"
            << before.to_text() << '\n';

  // Fail a link used by all families (a backbone link on the premium path).
  EdgeId failed = graph::kInvalidEdge;
  for (EdgeId e : primaries[2].edges()) {
    if (primaries[0].uses_edge(e)) {
      failed = e;
      break;
    }
  }
  if (failed == graph::kInvalidEdge) failed = primaries[2].edge(0);
  const auto& fe = g.edge(failed);
  std::cout << "*** link (" << fe.u << "," << fe.v << ") w=" << fe.weight
            << " fails ***\n\n";

  TablePrinter after({"family", "restored route", "cost", "PC length",
                      "stays in subnet"});
  for (std::size_t f = 0; f < families.size(); ++f) {
    const Family& fam = families[f];
    FailureMask scenario;
    scenario.fail_edge(failed);

    // The family's base set lives on its (unfailed) subnet; restoration
    // runs on subnet + failure.
    spf::DistanceOracle base_oracle(g, fam.restriction, spf::Metric::Weighted);
    // Adapt: CanonicalBaseSet requires an empty mask (base sets are defined
    // on the unfailed network); for a restricted family the subnet IS its
    // network, so decompose manually against the subnet oracle.
    const FailureMask effective = combine(fam.restriction, scenario);
    const Path backup =
        spf::shortest_path(g, s, t, effective,
                           spf::SpfOptions{.metric = spf::Metric::Weighted,
                                           .padded = true});
    if (backup.empty()) {
      after.add_row({fam.name, "(unreachable in subnet)", "-", "-", "-"});
      continue;
    }
    // Greedy longest-prefix against "is canonical in the subnet".
    std::size_t pieces = 0;
    std::size_t pos = 0;
    const std::size_t last = backup.num_nodes() - 1;
    bool in_subnet = true;
    while (pos < last) {
      std::size_t best = pos + 1;
      for (std::size_t j = last; j > pos; --j) {
        const Path seg = backup.subpath(pos, j);
        if (base_oracle.is_canonical(seg)) {
          best = j;
          break;
        }
      }
      ++pieces;
      pos = best;
    }
    for (EdgeId e : backup.edges()) {
      if (fam.restriction.edge_failed(e)) in_subnet = false;
    }
    after.add_row({fam.name, backup.to_string(),
                   std::to_string(backup.cost(g)), std::to_string(pieces),
                   in_subnet ? "yes" : "NO"});
  }
  std::cout << after.to_text();
  std::cout << "\nEach family restores inside its own subnet by "
               "concatenating ITS base paths —\nthe restriction composes "
               "with the failure as one FailureMask (the mechanism the\n"
               "paper's QoS-routing motivation needs).\n";
  return 0;
}
