// Topology workbench: generate any of the library's topologies, print its
// statistics, and export it as an rbpc-graph file and/or Graphviz DOT
// (optionally highlighting a restoration scenario).
//
// Usage:
//   topogen --kind isp|as|internet|waxman|random|ring|grid [--seed N]
//           [--scale X] [--nodes N] [--edges M]
//           [--out graph.txt] [--dot graph.dot]
//           [--fail-edge E] [--route s,t]
#include <fstream>
#include <iostream>

#include "graph/analysis.hpp"
#include "graph/dot.hpp"
#include "graph/io.hpp"
#include "spf/spf.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rbpc;

graph::Graph make(const CliArgs& args, Rng& rng) {
  const std::string kind = args.get_string("kind", "isp");
  const double scale = args.get_double("scale", 1.0);
  const std::size_t nodes = args.get_uint("nodes", 50);
  const std::size_t edges = args.get_uint("edges", 120);
  if (kind == "isp") return topo::make_isp_like(rng);
  if (kind == "as") return topo::make_as_like(rng, scale);
  if (kind == "internet") return topo::make_internet_like(rng, scale);
  if (kind == "waxman") return topo::make_waxman(nodes, 0.6, 0.25, rng);
  if (kind == "random") return topo::make_random_connected(nodes, edges, rng, 10);
  if (kind == "ring") return topo::make_ring(nodes);
  if (kind == "grid") return topo::make_grid(nodes, nodes);
  throw InputError("unknown --kind '" + kind + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    Rng rng(args.get_uint("seed", 1));
    const graph::Graph g = make(args, rng);

    const auto deg = graph::degree_stats(g);
    TablePrinter stats({"metric", "value"});
    stats.add_row({"nodes", std::to_string(g.num_nodes())});
    stats.add_row({"links", std::to_string(g.num_edges())});
    stats.add_row({"avg degree", TablePrinter::num(g.average_degree(), 3)});
    stats.add_row({"min/max degree",
                   std::to_string(deg.min) + " / " + std::to_string(deg.max)});
    stats.add_row({"connected", graph::is_connected(g) ? "yes" : "no"});
    stats.add_row(
        {"bridges", std::to_string(graph::find_bridges(g).size())});
    stats.add_row({"clustering",
                   TablePrinter::num(graph::global_clustering_coefficient(g), 3)});
    stats.add_row({"2-hop-bypassable links",
                   TablePrinter::percent(graph::triangle_edge_fraction(g))});
    std::cout << stats.to_text();

    graph::DotOptions dot_opts;
    if (args.has("fail-edge")) {
      dot_opts.failures.fail_edge(
          static_cast<graph::EdgeId>(args.get_uint("fail-edge", 0)));
    }
    if (args.has("route")) {
      const std::string route = args.get_string("route", "");
      const auto comma = route.find(',');
      if (comma == std::string::npos) {
        throw InputError("--route expects 's,t'");
      }
      const auto s = static_cast<graph::NodeId>(std::stoul(route));
      const auto t =
          static_cast<graph::NodeId>(std::stoul(route.substr(comma + 1)));
      dot_opts.highlight = spf::shortest_path(
          g, s, t, dot_opts.failures, spf::SpfOptions{.padded = true});
      std::cout << "\nroute " << s << " -> " << t << ": "
                << dot_opts.highlight.to_string() << "\n";
    }

    if (args.has("out")) {
      const std::string path = args.get_string("out", "");
      graph::save_graph_file(path, g);
      std::cout << "\nwrote " << path << " (rbpc-graph format)\n";
    }
    if (args.has("dot")) {
      const std::string path = args.get_string("dot", "");
      std::ofstream os(path);
      if (!os) throw InputError("cannot open " + path);
      graph::write_dot(os, g, dot_opts);
      std::cout << "wrote " << path << " (Graphviz)\n";
    }
    return 0;
  } catch (const Error& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
