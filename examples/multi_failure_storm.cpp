// Multi-failure storm: Theorems 1 and 2 as live dashboards.
//
// Fails k = 1..K random links on a mesh and tracks, for every disrupted
// sampled pair, how many base-LSP concatenations the restoration needs —
// against the theoretical ceilings (k+1 unweighted, 2k+1 weighted). Each
// storm's disrupted pairs are restored in one shot through the parallel
// BatchRestorer (core/batch.hpp), the way an event-driven deployment
// would: one failure event, all affected LSPs at once.
//
// Flags: --seed N, --max-k N, --storms N, --pairs N, --nodes N, --edges N,
//        --weighted B, --threads N (batch engine workers, 0 = hardware)
#include <iostream>
#include <vector>

#include "core/base_set.hpp"
#include "core/batch.hpp"
#include "core/restoration.hpp"
#include "graph/analysis.hpp"
#include "spf/oracle.hpp"
#include "topo/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rbpc;
  const CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 1);
  const std::size_t max_k = args.get_uint("max-k", 6);
  const std::size_t storms = args.get_uint("storms", 8);
  const std::size_t pairs = args.get_uint("pairs", 150);
  const std::size_t threads = args.get_uint("threads", 2);
  const std::size_t nodes = args.get_uint("nodes", 60);
  const std::size_t edges = args.get_uint("edges", 140);
  const bool weighted = args.get_bool("weighted", true);

  Rng rng(seed);
  const graph::Graph g =
      topo::make_random_connected(nodes, edges, rng, weighted ? 20 : 1);
  const auto metric = weighted ? spf::Metric::Weighted : spf::Metric::Hops;
  std::cout << "mesh: " << g.summary() << " ("
            << (weighted ? "weighted" : "unweighted") << ")\n\n";

  spf::DistanceOracle oracle(g, graph::FailureMask{}, metric);
  core::AllPairsShortestBaseSet base(oracle);
  core::BatchRestorer batch(base, core::BatchOptions{.threads = threads});

  TablePrinter table({"k failed links", "restored", "disconnected",
                      "avg PC length", "worst PC", "theory bound",
                      "within bound"});
  for (std::size_t k = 1; k <= max_k; ++k) {
    StatAccumulator pc;
    std::size_t worst = 0;
    std::size_t disconnected = 0;
    bool all_within = true;
    const std::size_t bound = weighted ? 2 * k + 1 : k + 1;

    Rng storm_rng(seed * 100 + k);
    for (std::size_t st = 0; st < storms; ++st) {
      graph::FailureMask mask;
      for (auto e : storm_rng.sample_distinct(g.num_edges(), k)) {
        mask.fail_edge(static_cast<graph::EdgeId>(e));
      }
      // Collect this storm's disrupted pairs (the paper's methodology
      // fails links on the pair's own LSP), then restore them all in one
      // batch — the per-source SPF trees are shared within the event.
      std::vector<core::RestoreJob> jobs;
      for (std::size_t p = 0; p < pairs; ++p) {
        const auto s = static_cast<graph::NodeId>(storm_rng.below(nodes));
        const auto t = static_cast<graph::NodeId>(storm_rng.below(nodes));
        if (s == t) continue;
        if (oracle.canonical_path(s, t).alive(g, mask)) continue;
        jobs.push_back(core::RestoreJob{s, t});
      }
      for (const core::Restoration& r : batch.restore_all(mask, jobs)) {
        if (!r.restored()) {
          ++disconnected;
          continue;
        }
        pc.add(static_cast<double>(r.pc_length()));
        worst = std::max(worst, r.pc_length());
        if (r.pc_length() > bound) all_within = false;
      }
    }
    table.add_row({std::to_string(k), std::to_string(pc.count()),
                   std::to_string(disconnected),
                   pc.empty() ? "-" : TablePrinter::num(pc.mean(), 2),
                   std::to_string(worst), std::to_string(bound),
                   all_within ? "yes" : "VIOLATED"});
  }
  std::cout << table.to_text() << "\n";
  std::cout << "batch engine: " << batch.stats().jobs << " restorations on "
            << batch.threads() << " thread(s), SPF cache hit rate "
            << TablePrinter::percent(batch.stats().spf_hit_rate()) << "\n\n";
  std::cout << "Theorem " << (weighted ? "2" : "1")
            << ": restoration after k failures needs at most "
            << (weighted ? "k+1 base paths + k edges (2k+1 components)"
                         : "k+1 base paths")
            << ".\nIn practice the average stays near 2 — the paper's core "
               "empirical finding.\n";
  return 0;
}
